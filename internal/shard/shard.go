// Package shard partitions the topology-join keyspace across
// processes. The data space is covered by a coarse routing grid whose
// cells are enumerated along a Hilbert curve (reusing internal/hilbert,
// the same curve family that orders the fine APRIL grid), and each
// shard owns one contiguous range of Hilbert cell ids. An object is
// assigned to every shard whose key range contains at least one cell
// its MBR overlaps — objects straddling a range boundary are
// replicated, exactly as PBSM replicates rectangles into every grid
// partition they touch.
//
// Replication makes shard-local joins complete but would duplicate
// boundary pairs, so results are deduplicated with the reference-point
// technique: a candidate pair is owned by exactly the shard whose key
// range contains the cell of the min corner of the two MBRs'
// intersection. That point lies inside both MBRs, so the owning shard
// is guaranteed to hold replicas of both objects; every other shard
// holding the pair discards it before evaluation. Summing per-shard
// results therefore reproduces the single-node answer exactly — the
// same argument Beast's distributed PBSM uses on Spark, here as the
// contract between topojoind's shard mode and the scatter-gather
// router (internal/shard/router).
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/hilbert"
)

// DefaultRouteOrder is the default routing-grid order: a 2^6 × 2^6
// grid (4096 cells) is coarse enough that routing a box costs at most
// a few thousand cell lookups and fine enough to split load across
// dozens of shards.
const DefaultRouteOrder = 6

// KeyRange is a half-open range [Lo, Hi) of Hilbert cell ids on the
// routing grid.
type KeyRange struct {
	Lo, Hi uint64
}

// Contains reports whether cell id d falls in the range.
func (r KeyRange) Contains(d uint64) bool { return d >= r.Lo && d < r.Hi }

// Empty reports whether the range holds no cells.
func (r KeyRange) Empty() bool { return r.Hi <= r.Lo }

// String renders the range in the "lo:hi" form ParseKeyRange accepts
// (and the -keyrange flag of topojoind takes).
func (r KeyRange) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// ParseKeyRange parses a "lo:hi" half-open cell-id range.
func ParseKeyRange(s string) (KeyRange, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return KeyRange{}, fmt.Errorf("shard: keyrange %q: want lo:hi", s)
	}
	l, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return KeyRange{}, fmt.Errorf("shard: keyrange %q: %w", s, err)
	}
	h, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return KeyRange{}, fmt.Errorf("shard: keyrange %q: %w", s, err)
	}
	if h <= l {
		return KeyRange{}, fmt.Errorf("shard: keyrange %q: empty (hi <= lo)", s)
	}
	return KeyRange{Lo: l, Hi: h}, nil
}

// grid maps data-space coordinates to routing-grid cells and their
// Hilbert ids. Coordinates outside the space clamp to the border cells,
// the same convention as the PBSM partitioner.
type grid struct {
	space  geom.MBR
	curve  hilbert.Curve
	cw, ch float64 // cell width and height
}

func newGrid(space geom.MBR, order uint) (grid, error) {
	if space.IsEmpty() || space.Width() <= 0 || space.Height() <= 0 {
		return grid{}, fmt.Errorf("shard: routing space must have positive extent, got %+v", space)
	}
	if order == 0 || order > hilbert.MaxOrder {
		return grid{}, fmt.Errorf("shard: routing order %d out of range [1, %d]", order, hilbert.MaxOrder)
	}
	c := hilbert.New(order)
	side := float64(c.Side())
	return grid{space: space, curve: c, cw: space.Width() / side, ch: space.Height() / side}, nil
}

// cellOf returns the (clamped) grid cell containing point (x, y).
func (g grid) cellOf(x, y float64) (uint32, uint32) {
	cx := int64((x - g.space.MinX) / g.cw)
	cy := int64((y - g.space.MinY) / g.ch)
	side := int64(g.curve.Side())
	if cx < 0 {
		cx = 0
	} else if cx >= side {
		cx = side - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= side {
		cy = side - 1
	}
	return uint32(cx), uint32(cy)
}

// span returns the inclusive cell rectangle covered by box.
func (g grid) span(box geom.MBR) (x0, y0, x1, y1 uint32) {
	x0, y0 = g.cellOf(box.MinX, box.MinY)
	x1, y1 = g.cellOf(box.MaxX, box.MaxY)
	return x0, y0, x1, y1
}

// Plan is the full partitioning of the routing keyspace: the grid plus
// one contiguous key range per shard, together covering every cell.
// The router holds the plan; each shard holds only its Assignment.
type Plan struct {
	g      grid
	ranges []KeyRange
}

// NewPlan splits the keyspace of a routeOrder Hilbert grid over space
// into shards contiguous, near-equal key ranges. Shards and the router
// must be built from the same space, order and shard count (or the
// ranges the plan prints) or partitioning is undefined.
func NewPlan(space geom.MBR, routeOrder uint, shards int) (*Plan, error) {
	g, err := newGrid(space, routeOrder)
	if err != nil {
		return nil, err
	}
	total := g.curve.NumCells()
	if shards < 1 {
		return nil, fmt.Errorf("shard: plan needs at least 1 shard, got %d", shards)
	}
	if uint64(shards) > total {
		return nil, fmt.Errorf("shard: %d shards exceed the %d routing cells", shards, total)
	}
	size, rem := total/uint64(shards), total%uint64(shards)
	ranges := make([]KeyRange, shards)
	var lo uint64
	for i := range ranges {
		hi := lo + size
		if uint64(i) < rem {
			hi++
		}
		ranges[i] = KeyRange{Lo: lo, Hi: hi}
		lo = hi
	}
	return &Plan{g: g, ranges: ranges}, nil
}

// NumShards returns the number of shards in the plan.
func (p *Plan) NumShards() int { return len(p.ranges) }

// Ranges returns a copy of the per-shard key ranges, in shard order.
func (p *Plan) Ranges() []KeyRange {
	out := make([]KeyRange, len(p.ranges))
	copy(out, p.ranges)
	return out
}

// Space returns the routing data space.
func (p *Plan) Space() geom.MBR { return p.g.space }

// RouteOrder returns the routing-grid order.
func (p *Plan) RouteOrder() uint { return p.g.curve.Order() }

// Assignment returns shard i's slice of the plan.
func (p *Plan) Assignment(i int) *Assignment {
	if i < 0 || i >= len(p.ranges) {
		panic(fmt.Sprintf("shard: assignment index %d out of range [0, %d)", i, len(p.ranges)))
	}
	return &Assignment{g: p.g, index: i, rng: p.ranges[i]}
}

// shardOf returns the index of the shard owning cell id d. Ranges are
// contiguous and ascending, so this is a binary search.
func (p *Plan) shardOf(d uint64) int {
	return sort.Search(len(p.ranges), func(i int) bool { return d < p.ranges[i].Hi })
}

// ShardsFor returns the sorted indexes of every shard whose key range
// contains at least one routing cell overlapped by box — the scatter
// set for a probe with that MBR. Never empty: coordinates clamp onto
// the grid.
func (p *Plan) ShardsFor(box geom.MBR) []int {
	x0, y0, x1, y1 := p.g.span(box)
	seen := make([]bool, len(p.ranges))
	n := 0
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			if i := p.shardOf(p.g.curve.D(cx, cy)); !seen[i] {
				seen[i] = true
				if n++; n == len(p.ranges) {
					goto done
				}
			}
		}
	}
done:
	out := make([]int, 0, n)
	for i, s := range seen {
		if s {
			out = append(out, i)
		}
	}
	return out
}

// Assignment is one shard's view of the partitioning: the routing grid
// plus the shard's own key range. It answers the two questions a shard
// process needs — "is this object mine?" (Overlaps, used to filter the
// dataset at registration) and "is this candidate pair mine?" (Owns,
// the reference-point deduplication applied before evaluation).
type Assignment struct {
	g     grid
	index int
	rng   KeyRange
}

// NewAssignment builds a standalone assignment for shard index owning
// rng on the routeOrder routing grid over space — how topojoind's
// -shard-id/-keyrange flags construct the shard's view without knowing
// the full plan.
func NewAssignment(space geom.MBR, routeOrder uint, index int, rng KeyRange) (*Assignment, error) {
	g, err := newGrid(space, routeOrder)
	if err != nil {
		return nil, err
	}
	if index < 0 {
		return nil, fmt.Errorf("shard: negative shard index %d", index)
	}
	if rng.Empty() || rng.Hi > g.curve.NumCells() {
		return nil, fmt.Errorf("shard: keyrange %s outside the %d-cell keyspace", rng, g.curve.NumCells())
	}
	return &Assignment{g: g, index: index, rng: rng}, nil
}

// Index returns the shard's index.
func (a *Assignment) Index() int { return a.index }

// Range returns the shard's key range.
func (a *Assignment) Range() KeyRange { return a.rng }

// RouteOrder returns the routing-grid order.
func (a *Assignment) RouteOrder() uint { return a.g.curve.Order() }

// Space returns the routing data space.
func (a *Assignment) Space() geom.MBR { return a.g.space }

// Overlaps reports whether any routing cell covered by box belongs to
// the shard — whether an object with that MBR must be stored here.
func (a *Assignment) Overlaps(box geom.MBR) bool {
	x0, y0, x1, y1 := a.g.span(box)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			if a.rng.Contains(a.g.curve.D(cx, cy)) {
				return true
			}
		}
	}
	return false
}

// Owns reports whether the shard owns the candidate pair with MBRs
// (b1, b2) under the reference-point rule: the pair belongs to the
// shard whose range contains the cell of the intersection's min corner.
// For intersecting MBRs that point lies inside both, so the owning
// shard holds replicas of both objects and exactly one shard in a plan
// reports each pair.
func (a *Assignment) Owns(b1, b2 geom.MBR) bool {
	rx := b1.MinX
	if b2.MinX > rx {
		rx = b2.MinX
	}
	ry := b1.MinY
	if b2.MinY > ry {
		ry = b2.MinY
	}
	cx, cy := a.g.cellOf(rx, ry)
	return a.rng.Contains(a.g.curve.D(cx, cy))
}
