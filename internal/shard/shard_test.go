package shard

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

var testSpace = geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func TestParseKeyRange(t *testing.T) {
	r, err := ParseKeyRange("10:42")
	if err != nil {
		t.Fatal(err)
	}
	if r != (KeyRange{Lo: 10, Hi: 42}) {
		t.Fatalf("got %+v", r)
	}
	if r.String() != "10:42" {
		t.Fatalf("String: got %q", r.String())
	}
	if rt, err := ParseKeyRange(r.String()); err != nil || rt != r {
		t.Fatalf("roundtrip: %+v %v", rt, err)
	}
	for _, bad := range []string{"", "10", "10:", ":42", "42:10", "5:5", "a:b", "-1:4"} {
		if _, err := ParseKeyRange(bad); err == nil {
			t.Errorf("ParseKeyRange(%q): want error", bad)
		}
	}
}

func TestNewPlanCoversKeyspace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		p, err := NewPlan(testSpace, 4, n)
		if err != nil {
			t.Fatal(err)
		}
		rs := p.Ranges()
		if len(rs) != n || p.NumShards() != n {
			t.Fatalf("n=%d: got %d ranges", n, len(rs))
		}
		if rs[0].Lo != 0 {
			t.Fatalf("n=%d: first range starts at %d", n, rs[0].Lo)
		}
		total := uint64(1) << (2 * 4)
		if rs[n-1].Hi != total {
			t.Fatalf("n=%d: last range ends at %d, want %d", n, rs[n-1].Hi, total)
		}
		for i := 1; i < n; i++ {
			if rs[i].Lo != rs[i-1].Hi {
				t.Fatalf("n=%d: gap between ranges %d and %d", n, i-1, i)
			}
			if rs[i].Empty() {
				t.Fatalf("n=%d: range %d empty", n, i)
			}
		}
	}
}

func TestNewPlanRejects(t *testing.T) {
	if _, err := NewPlan(testSpace, 4, 0); err == nil {
		t.Error("0 shards: want error")
	}
	if _, err := NewPlan(testSpace, 1, 5); err == nil {
		t.Error("more shards than cells: want error")
	}
	if _, err := NewPlan(geom.MBR{MinX: 1, MinY: 1, MaxX: 1, MaxY: 5}, 4, 2); err == nil {
		t.Error("degenerate space: want error")
	}
	if _, err := NewPlan(testSpace, 0, 1); err == nil {
		t.Error("order 0: want error")
	}
}

func randBox(rng *rand.Rand) geom.MBR {
	x := rng.Float64() * 90
	y := rng.Float64() * 90
	return geom.MBR{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
}

// TestShardsForBrute checks ShardsFor against a brute-force sweep of
// every routing cell.
func TestShardsForBrute(t *testing.T) {
	p, err := NewPlan(testSpace, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	side := uint32(1) << 3
	for trial := 0; trial < 200; trial++ {
		box := randBox(rng)
		want := make(map[int]bool)
		for cy := uint32(0); cy < side; cy++ {
			for cx := uint32(0); cx < side; cx++ {
				cellBox := geom.MBR{
					MinX: testSpace.MinX + float64(cx)*p.g.cw,
					MinY: testSpace.MinY + float64(cy)*p.g.ch,
					MaxX: testSpace.MinX + float64(cx+1)*p.g.cw,
					MaxY: testSpace.MinY + float64(cy+1)*p.g.ch,
				}
				// Half-open cells: a box touching only the max edge of a
				// cell belongs to the next cell (cellOf truncation), so
				// compare with strict inequality on the cell's max side.
				if box.MinX < cellBox.MaxX && box.MaxX >= cellBox.MinX &&
					box.MinY < cellBox.MaxY && box.MaxY >= cellBox.MinY {
					want[p.shardOf(p.g.curve.D(cx, cy))] = true
				}
			}
		}
		got := p.ShardsFor(box)
		if len(got) != len(want) {
			t.Fatalf("box %+v: got %v, want %v", box, got, want)
		}
		for _, i := range got {
			if !want[i] {
				t.Fatalf("box %+v: got %v, want %v", box, got, want)
			}
		}
	}
}

// TestOwnsExactlyOne is the deduplication invariant: every intersecting
// box pair is owned by exactly one shard, and the owner overlaps both
// boxes (so it holds replicas of both objects).
func TestOwnsExactlyOne(t *testing.T) {
	p, err := NewPlan(testSpace, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	as := make([]*Assignment, p.NumShards())
	for i := range as {
		as[i] = p.Assignment(i)
	}
	rng := rand.New(rand.NewSource(23))
	pairs := 0
	for trial := 0; trial < 8000; trial++ {
		b1, b2 := randBox(rng), randBox(rng)
		if !b1.Intersects(b2) {
			continue
		}
		pairs++
		owners := 0
		for _, a := range as {
			if !a.Owns(b1, b2) {
				continue
			}
			owners++
			if !a.Overlaps(b1) || !a.Overlaps(b2) {
				t.Fatalf("shard %d owns pair but lacks a replica: %+v %+v", a.Index(), b1, b2)
			}
		}
		if owners != 1 {
			t.Fatalf("pair %+v %+v owned by %d shards", b1, b2, owners)
		}
	}
	if pairs < 100 {
		t.Fatalf("only %d intersecting pairs generated", pairs)
	}
}

// TestOverlapsPartitionsObjects: every box lands on at least one shard,
// and the scatter set ShardsFor agrees with per-shard Overlaps.
func TestOverlapsPartitionsObjects(t *testing.T) {
	p, err := NewPlan(testSpace, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		box := randBox(rng)
		set := p.ShardsFor(box)
		if len(set) == 0 {
			t.Fatalf("box %+v: empty scatter set", box)
		}
		inSet := make(map[int]bool, len(set))
		for _, i := range set {
			inSet[i] = true
		}
		for i := 0; i < p.NumShards(); i++ {
			if got := p.Assignment(i).Overlaps(box); got != inSet[i] {
				t.Fatalf("box %+v shard %d: Overlaps=%v, ShardsFor=%v", box, i, got, inSet[i])
			}
		}
	}
}

// TestAssignmentStandalone: NewAssignment from (space, order, range)
// behaves identically to the plan's slice — the contract between
// topojoind -keyrange and the router's plan.
func TestAssignmentStandalone(t *testing.T) {
	p, err := NewPlan(testSpace, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < p.NumShards(); i++ {
		fromPlan := p.Assignment(i)
		standalone, err := NewAssignment(testSpace, 4, i, fromPlan.Range())
		if err != nil {
			t.Fatal(err)
		}
		if standalone.Index() != i || standalone.Range() != fromPlan.Range() {
			t.Fatalf("shard %d: identity mismatch", i)
		}
		for trial := 0; trial < 200; trial++ {
			b1, b2 := randBox(rng), randBox(rng)
			if fromPlan.Overlaps(b1) != standalone.Overlaps(b1) {
				t.Fatalf("shard %d: Overlaps disagrees on %+v", i, b1)
			}
			if fromPlan.Owns(b1, b2) != standalone.Owns(b1, b2) {
				t.Fatalf("shard %d: Owns disagrees on %+v %+v", i, b1, b2)
			}
		}
	}
	if _, err := NewAssignment(testSpace, 4, 0, KeyRange{Lo: 0, Hi: 1 << 30}); err == nil {
		t.Error("range beyond keyspace: want error")
	}
	if _, err := NewAssignment(testSpace, 4, -1, KeyRange{Lo: 0, Hi: 4}); err == nil {
		t.Error("negative index: want error")
	}
}

// TestClampOutsideSpace: boxes (partially) outside the routing space
// clamp to border cells instead of panicking or vanishing.
func TestClampOutsideSpace(t *testing.T) {
	p, err := NewPlan(testSpace, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range []geom.MBR{
		{MinX: -50, MinY: -50, MaxX: -10, MaxY: -10},
		{MinX: 90, MinY: 90, MaxX: 150, MaxY: 150},
		{MinX: -10, MinY: 40, MaxX: 110, MaxY: 60},
	} {
		if got := p.ShardsFor(box); len(got) == 0 {
			t.Errorf("box %+v: empty scatter set", box)
		}
	}
}
