package mbrrel

import (
	"testing"

	"repro/internal/de9im"
	"repro/internal/geom"
)

func box(x0, y0, x1, y1 float64) geom.MBR {
	return geom.MBR{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		r, s geom.MBR
		want Case
	}{
		{"disjoint", box(0, 0, 1, 1), box(5, 5, 6, 6), DisjointMBRs},
		{"equal", box(0, 0, 4, 4), box(0, 0, 4, 4), EqualMBRs},
		{"r inside s", box(1, 1, 2, 2), box(0, 0, 4, 4), RInsideS},
		{"r inside s touching", box(0, 1, 2, 2), box(0, 0, 4, 4), RInsideS},
		{"r contains s", box(0, 0, 4, 4), box(1, 1, 2, 2), RContainsS},
		{"cross r wide", box(0, 2, 10, 4), box(4, 0, 6, 8), CrossMBRs},
		{"cross r tall", box(4, 0, 6, 8), box(0, 2, 10, 4), CrossMBRs},
		{"partial overlap", box(0, 0, 4, 4), box(2, 2, 6, 6), PartialMBRs},
		{"touching edges", box(0, 0, 2, 2), box(2, 0, 4, 2), PartialMBRs},
		{"corner touch", box(0, 0, 2, 2), box(2, 2, 4, 4), PartialMBRs},
		// A T-shape arrangement is not a cross: s does not span r on both
		// vertical sides.
		{"t-shape", box(0, 2, 10, 4), box(4, 2, 6, 8), PartialMBRs},
	}
	for _, c := range cases {
		if got := Classify(c.r, c.s); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCaseString(t *testing.T) {
	names := map[Case]string{
		DisjointMBRs: "disjoint", EqualMBRs: "equal", RInsideS: "r_inside_s",
		RContainsS: "r_contains_s", CrossMBRs: "cross", PartialMBRs: "partial",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestCandidates(t *testing.T) {
	// Fig. 4(a): MBR(r) inside MBR(s) rules out equals, contains, covers.
	in := Candidates(RInsideS)
	for _, rel := range []de9im.Relation{de9im.Equals, de9im.Contains, de9im.Covers} {
		if in.Has(rel) {
			t.Errorf("r-inside-s must exclude %v", rel)
		}
	}
	for _, rel := range []de9im.Relation{de9im.Disjoint, de9im.Inside, de9im.CoveredBy, de9im.Meets, de9im.Intersects} {
		if !in.Has(rel) {
			t.Errorf("r-inside-s must include %v", rel)
		}
	}
	// Fig. 4(c): equal MBRs rule out strict inside/contains.
	eq := Candidates(EqualMBRs)
	if eq.Has(de9im.Inside) || eq.Has(de9im.Contains) {
		t.Error("equal MBRs must exclude strict containments")
	}
	if !eq.Has(de9im.Equals) || !eq.Has(de9im.CoveredBy) || !eq.Has(de9im.Covers) {
		t.Error("equal MBRs must keep equals/covered_by/covers")
	}
	// Fig. 4(d): cross leaves only intersects.
	if cr := Candidates(CrossMBRs); cr.Count() != 1 || !cr.Has(de9im.Intersects) {
		t.Error("cross must leave only intersects")
	}
	// Fig. 4(e): partial overlap leaves disjoint/meets/intersects.
	pa := Candidates(PartialMBRs)
	if pa.Count() != 3 || !pa.Has(de9im.Disjoint) || !pa.Has(de9im.Meets) || !pa.Has(de9im.Intersects) {
		t.Error("partial candidates wrong")
	}
}

func TestDefinite(t *testing.T) {
	if rel, ok := Definite(DisjointMBRs); !ok || rel != de9im.Disjoint {
		t.Error("disjoint MBRs must be definite disjoint")
	}
	if rel, ok := Definite(CrossMBRs); !ok || rel != de9im.Intersects {
		t.Error("crossing MBRs must be definite intersects")
	}
	for _, c := range []Case{EqualMBRs, RInsideS, RContainsS, PartialMBRs} {
		if _, ok := Definite(c); ok {
			t.Errorf("case %v must not be definite", c)
		}
	}
}

func TestPossible(t *testing.T) {
	if Possible(RInsideS, de9im.Contains) {
		t.Error("contains impossible when MBR(r) inside MBR(s)")
	}
	if !Possible(RInsideS, de9im.Inside) {
		t.Error("inside possible when MBR(r) inside MBR(s)")
	}
}

// TestCandidatesSound verifies on geometry: for random MBR pairs, the
// true relation of *any* polygons with those MBRs must be a candidate.
// Here we check the necessary-condition logic structurally: every
// candidate set includes intersects or is the singleton disjoint set,
// and disjoint appears everywhere it is geometrically possible.
func TestCandidatesSound(t *testing.T) {
	for _, c := range []Case{EqualMBRs, RInsideS, RContainsS, PartialMBRs} {
		set := Candidates(c)
		if !set.Has(de9im.Intersects) {
			t.Errorf("case %v must allow intersects", c)
		}
		if !set.Has(de9im.Disjoint) {
			t.Errorf("case %v must allow disjoint", c)
		}
		if !set.Has(de9im.Meets) {
			t.Errorf("case %v must allow meets", c)
		}
	}
}
