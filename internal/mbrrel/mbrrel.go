// Package mbrrel classifies how the MBRs of two objects intersect and
// derives the candidate topological relations of each case (Sec. 3.1,
// Fig. 4 of the paper). The classification is the enhanced MBR filter: it
// both prunes impossible relations before any geometry work and routes the
// pair to the matching specialized intermediate filter.
package mbrrel

import (
	"repro/internal/de9im"
	"repro/internal/geom"
)

// Case is the MBR intersection case of Fig. 4.
type Case uint8

// MBR intersection cases.
const (
	// DisjointMBRs: the MBRs do not intersect; the objects are disjoint.
	DisjointMBRs Case = iota
	// EqualMBRs: identical rectangles (Fig. 4c).
	EqualMBRs
	// RInsideS: MBR(r) contained in MBR(s), not equal (Fig. 4a).
	RInsideS
	// RContainsS: MBR(r) contains MBR(s), not equal (Fig. 4b).
	RContainsS
	// CrossMBRs: each MBR spans the other in one axis (Fig. 4d); two
	// connected objects in this arrangement certainly intersect.
	CrossMBRs
	// PartialMBRs: any other intersection (Fig. 4e).
	PartialMBRs
)

func (c Case) String() string {
	switch c {
	case DisjointMBRs:
		return "disjoint"
	case EqualMBRs:
		return "equal"
	case RInsideS:
		return "r_inside_s"
	case RContainsS:
		return "r_contains_s"
	case CrossMBRs:
		return "cross"
	default:
		return "partial"
	}
}

// Classify determines the MBR intersection case of (r, s).
func Classify(r, s geom.MBR) Case {
	if !r.Intersects(s) {
		return DisjointMBRs
	}
	if r.Equal(s) {
		return EqualMBRs
	}
	if s.ContainsMBR(r) {
		return RInsideS
	}
	if r.ContainsMBR(s) {
		return RContainsS
	}
	if crosses(r, s) || crosses(s, r) {
		return CrossMBRs
	}
	return PartialMBRs
}

// crosses reports whether a spans b horizontally while b spans a
// vertically: a strictly wider on both sides, b strictly taller on both
// sides. Any connected region filling a must then cross any connected
// region filling b.
func crosses(a, b geom.MBR) bool {
	return a.MinX < b.MinX && b.MaxX < a.MaxX &&
		b.MinY < a.MinY && a.MaxY < b.MaxY
}

// candidate relation sets per case (Fig. 4). With MBR(r) inside MBR(s),
// r cannot equal, contain, or cover s; mirrored for the contains case;
// with equal MBRs, strict inside/contains are impossible (a polygon
// touching its MBR boundary cannot be strictly interior to another object
// sharing that MBR).
var candidates = map[Case]de9im.RelationSet{
	DisjointMBRs: de9im.NewRelationSet(de9im.Disjoint),
	EqualMBRs: de9im.NewRelationSet(
		de9im.Equals, de9im.CoveredBy, de9im.Covers,
		de9im.Meets, de9im.Intersects, de9im.Disjoint),
	RInsideS: de9im.NewRelationSet(
		de9im.Disjoint, de9im.Inside, de9im.CoveredBy,
		de9im.Meets, de9im.Intersects),
	RContainsS: de9im.NewRelationSet(
		de9im.Disjoint, de9im.Contains, de9im.Covers,
		de9im.Meets, de9im.Intersects),
	CrossMBRs: de9im.NewRelationSet(de9im.Intersects),
	PartialMBRs: de9im.NewRelationSet(
		de9im.Disjoint, de9im.Meets, de9im.Intersects),
}

// Candidates returns the possible topological relations of a pair whose
// MBRs intersect per case c. Fig. 4 omits disjoint for equal MBRs; it is
// included here because two interleaved shapes can share an MBR without
// sharing a point.
func Candidates(c Case) de9im.RelationSet { return candidates[c] }

// Definite returns the relation that certainly holds for case c, if any:
// disjoint MBRs imply disjoint objects and crossing MBRs imply
// intersecting objects (for connected, MBR-filling regions such as
// polygons).
func Definite(c Case) (de9im.Relation, bool) {
	switch c {
	case DisjointMBRs:
		return de9im.Disjoint, true
	case CrossMBRs:
		return de9im.Intersects, true
	default:
		return 0, false
	}
}

// Possible reports whether relation rel is possible under case c; used by
// the relate_p fast path to reject predicates without touching geometry.
func Possible(c Case, rel de9im.Relation) bool { return candidates[c].Has(rel) }
