package core

import (
	"math/rand"
	"testing"

	"repro/internal/de9im"
)

func TestImplies(t *testing.T) {
	cases := []struct {
		rel, pred de9im.Relation
		want      bool
	}{
		{de9im.Equals, de9im.Equals, true},
		{de9im.Equals, de9im.CoveredBy, true},
		{de9im.Equals, de9im.Covers, true},
		{de9im.Equals, de9im.Intersects, true},
		{de9im.Equals, de9im.Inside, false},
		{de9im.Inside, de9im.CoveredBy, true},
		{de9im.Inside, de9im.Intersects, true},
		{de9im.Inside, de9im.Covers, false},
		{de9im.Contains, de9im.Covers, true},
		{de9im.Contains, de9im.CoveredBy, false},
		{de9im.Meets, de9im.Intersects, true},
		{de9im.Meets, de9im.Meets, true},
		{de9im.Disjoint, de9im.Intersects, false},
		{de9im.Disjoint, de9im.Disjoint, true},
		{de9im.Intersects, de9im.Meets, false},
	}
	for _, c := range cases {
		if got := Implies(c.rel, c.pred); got != c.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", c.rel, c.pred, got, c.want)
		}
	}
}

// TestRelatePredAgreesWithFindRelation: for every pair and every
// predicate, the specialized P+C relate_p answer must match the ground
// truth derived from the ST2 most specific relation.
func TestRelatePredAgreesWithFindRelation(t *testing.T) {
	b := testBuilder(t)
	rng := rand.New(rand.NewSource(404))
	pairs := testPairs(t, b, rng)
	preds := []de9im.Relation{
		de9im.Equals, de9im.Meets, de9im.Inside, de9im.CoveredBy,
		de9im.Contains, de9im.Covers, de9im.Intersects, de9im.Disjoint,
	}
	for i, pr := range pairs {
		truth := FindRelation(ST2, pr[0], pr[1]).Relation
		for _, p := range preds {
			want := Implies(truth, p)
			for _, m := range Methods {
				got := RelatePred(m, pr[0], pr[1], p)
				if got.Holds != want {
					t.Fatalf("pair %d pred %v method %v: got %v, want %v (truth %v)",
						i, p, m, got.Holds, want, truth)
				}
			}
		}
	}
}

// TestRelatePredMeetsCheap: the meets filter must answer definitively
// (without refinement) for pairs whose interiors clearly overlap or whose
// approximations are far apart — the mechanism behind Table 5's huge
// relate_meets throughput.
func TestRelatePredMeetsCheap(t *testing.T) {
	b := testBuilder(t)
	inner := obj(t, b, 0, rect(30, 30, 60, 60))
	outer := obj(t, b, 1, rect(10, 10, 100, 100))
	res := RelatePred(PC, inner, outer, de9im.Meets)
	if res.Holds || res.Refined {
		t.Errorf("nested pair: meets = %+v, want definite false", res)
	}
	far := obj(t, b, 2, rect(90, 90, 120, 120))
	small := obj(t, b, 3, rect(89, 89, 91, 91)) // MBRs intersect, objects overlap
	res = RelatePred(PC, far, small, de9im.Meets)
	if res.Holds {
		t.Errorf("overlapping corner: meets should not hold: %+v", res)
	}
}

func TestRelatePredImpossibleByMBR(t *testing.T) {
	b := testBuilder(t)
	small := obj(t, b, 0, rect(20, 20, 30, 30))
	big := obj(t, b, 1, rect(10, 10, 50, 50))
	// MBR(small) inside MBR(big): contains/covers/equals impossible for
	// the ordered pair (small, big); the P+C filter must answer without
	// refinement.
	for _, p := range []de9im.Relation{de9im.Contains, de9im.Covers, de9im.Equals} {
		res := RelatePred(PC, small, big, p)
		if res.Holds || res.Refined {
			t.Errorf("pred %v: %+v, want definite false", p, res)
		}
	}
}

func TestRelatePredDisjointMBRs(t *testing.T) {
	b := testBuilder(t)
	r := obj(t, b, 0, rect(0, 0, 1, 1))
	s := obj(t, b, 1, rect(10, 10, 11, 11))
	if res := RelatePred(PC, r, s, de9im.Disjoint); !res.Holds || res.Refined {
		t.Errorf("disjoint MBRs: %+v", res)
	}
	if res := RelatePred(PC, r, s, de9im.Intersects); res.Holds {
		t.Errorf("disjoint MBRs intersects: %+v", res)
	}
}

// TestRelateFilterDirect exercises the Fig. 6 filter verdicts on
// constructed approximations.
func TestRelateFilterDirect(t *testing.T) {
	b := testBuilder(t)
	inner := obj(t, b, 0, rect(40, 40, 60, 60))
	outer := obj(t, b, 1, rect(20, 20, 100, 100))
	twin := obj(t, b, 2, rect(40, 40, 60, 60))
	apart := obj(t, b, 3, rect(90, 20, 110, 40))

	if got := relateFilter(de9im.Inside, inner, outer); got != Yes {
		t.Errorf("inside filter = %v, want yes", got)
	}
	if got := relateFilter(de9im.Inside, outer, inner); got != No {
		t.Errorf("inverse inside filter = %v, want no", got)
	}
	if got := relateFilter(de9im.Contains, outer, inner); got != Yes {
		t.Errorf("contains filter = %v, want yes", got)
	}
	if got := relateFilter(de9im.Equals, inner, twin); got != Unknown {
		t.Errorf("equals filter on identical rasters = %v, want unknown", got)
	}
	if got := relateFilter(de9im.Equals, inner, outer); got != No {
		t.Errorf("equals filter on different rasters = %v, want no", got)
	}
	if got := relateFilter(de9im.Meets, inner, outer); got != No {
		t.Errorf("meets filter on nested = %v, want no", got)
	}
	if got := relateFilter(de9im.Intersects, inner, outer); got != Yes {
		t.Errorf("intersects filter = %v, want yes", got)
	}
	if got := relateFilter(de9im.Intersects, inner, apart); got != No {
		t.Errorf("intersects filter far = %v, want no", got)
	}
	if got := relateFilter(de9im.Disjoint, inner, apart); got != Yes {
		t.Errorf("disjoint filter = %v, want yes", got)
	}
	if got := relateFilter(de9im.Disjoint, inner, outer); got != No {
		t.Errorf("disjoint filter nested = %v, want no", got)
	}
}
