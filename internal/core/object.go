// Package core implements the paper's contribution: fast detection of
// topological relations between polygon pairs whose MBRs intersect
// (Sec. 3). It provides
//
//   - the specialized intermediate filters IFEquals, IFInside, IFContains
//     and IFIntersects (Fig. 5), which run merge-join relations on the
//     objects' APRIL interval lists to decide the most specific relation
//     — or shrink the candidate set — without touching exact geometry;
//   - Algorithm 1 (FindRelation) dispatching on the MBR intersection case;
//   - the relate_p predicate filters of Fig. 6;
//   - the four evaluated pipelines ST2, OP2, APRIL and P+C behind a
//     single Method switch, sharing the DE-9IM engine for refinement.
package core

import (
	"fmt"
	"sync"

	"repro/internal/april"
	"repro/internal/de9im"
	"repro/internal/geom"
)

// Object is one spatial object of a dataset: its exact geometry, its MBR,
// and its precomputed APRIL approximation. The MBR and approximation are
// built once during preprocessing; the filters only touch those, loading
// the exact geometry solely for refinement.
type Object struct {
	ID     int
	Poly   *geom.Polygon
	MBR    geom.MBR
	Approx april.Approx

	prepOnce sync.Once
	prep     *de9im.Prepared
}

// NewObject precomputes the MBR and APRIL approximation of a polygon.
func NewObject(id int, p *geom.Polygon, b *april.Builder) (*Object, error) {
	ap, err := b.Build(p)
	if err != nil {
		return nil, fmt.Errorf("core: object %d: %w", id, err)
	}
	return &Object{ID: id, Poly: p, MBR: p.Bounds(), Approx: ap}, nil
}

// multi returns the object's geometry as a multipolygon for the DE-9IM
// engine.
func (o *Object) multi() *geom.MultiPolygon { return geom.NewMultiPolygon(o.Poly) }

// Prepared returns the object's DE-9IM acceleration structures (locator,
// edge tables, sweep index), built on first use and cached for the
// object's lifetime. An object typically survives MBR-filtering against
// many partners; caching makes the per-pair refinement cost independent
// of geometry size for everything except the sweep itself. Safe for
// concurrent callers.
func (o *Object) Prepared() *de9im.Prepared {
	o.prepOnce.Do(func() { o.prep = de9im.Prepare(o.multi()) })
	return o.prep
}

// refineScratch pools noding scratches for the default Refine entry
// point, which has no caller-owned state to hang one off.
var refineScratch = sync.Pool{New: func() any { return new(de9im.Scratch) }}

// Refine computes the DE-9IM matrix of the pair's exact geometries: the
// refinement step of every pipeline. It reuses the objects' cached
// Prepared structures and a pooled scratch; loop-heavy callers that want
// a private scratch use NewScratchRefiner or a Sweeper instead.
func Refine(r, s *Object) de9im.Matrix {
	sc := refineScratch.Get().(*de9im.Scratch)
	m := de9im.RelateScratch(r.Prepared(), s.Prepared(), sc)
	refineScratch.Put(sc)
	return m
}

// NewScratchRefiner returns a Refiner bound to its own private noding
// scratch: zero allocations per call in steady state, but not safe for
// concurrent use — give each worker its own.
func NewScratchRefiner() Refiner {
	sc := new(de9im.Scratch)
	return func(r, s *Object) de9im.Matrix {
		return de9im.RelateScratch(r.Prepared(), s.Prepared(), sc)
	}
}

// NewObjectAdaptive is NewObject with the adaptive-order approximation
// builder: objects too large for the base grid get a coarser, still sound
// approximation instead of an error.
func NewObjectAdaptive(id int, p *geom.Polygon, b *april.Builder) (*Object, error) {
	ap, err := b.BuildAdaptive(p)
	if err != nil {
		return nil, fmt.Errorf("core: object %d: %w", id, err)
	}
	return &Object{ID: id, Poly: p, MBR: p.Bounds(), Approx: ap}, nil
}
