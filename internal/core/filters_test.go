package core

import (
	"testing"

	"repro/internal/april"
	"repro/internal/de9im"
	"repro/internal/interval"
)

// synth builds an object with handcrafted interval lists, bypassing
// rasterization so each filter branch can be pinned exactly.
func synth(p, c interval.List) *Object {
	return &Object{Approx: april.Approx{P: p, C: c}}
}

func ivs(pairs ...uint64) interval.List {
	l := make(interval.List, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		l = append(l, interval.Interval{Start: pairs[i], End: pairs[i+1]})
	}
	return l
}

func wantDefinite(t *testing.T, out Outcome, rel de9im.Relation) {
	t.Helper()
	if !out.Definite || out.Relation != rel {
		t.Fatalf("got %+v, want definite %v", out, rel)
	}
}

func wantRefine(t *testing.T, out Outcome, rels ...de9im.Relation) {
	t.Helper()
	if out.Definite {
		t.Fatalf("got definite %v, want refinement", out.Relation)
	}
	want := de9im.NewRelationSet(rels...)
	if out.Candidates != want {
		t.Fatalf("candidates %v, want %v", out.Candidates.Relations(), want.Relations())
	}
}

func TestIFEqualsBranches(t *testing.T) {
	// Branch 1: C lists match.
	r := synth(ivs(12, 14), ivs(10, 20))
	s := synth(ivs(13, 15), ivs(10, 20))
	wantRefine(t, IFEquals(r, s), de9im.Equals, de9im.CoveredBy, de9im.Covers, de9im.Intersects)

	// Branch 2a: rC inside sC and inside sP -> definite covered by.
	r = synth(nil, ivs(12, 14))
	s = synth(ivs(10, 20), ivs(8, 22))
	wantDefinite(t, IFEquals(r, s), de9im.CoveredBy)

	// Branch 2b: rC inside sC but not inside sP.
	s = synth(ivs(13, 14), ivs(8, 22))
	wantRefine(t, IFEquals(r, s), de9im.CoveredBy, de9im.Intersects)

	// Branch 3a: rC contains sC and rP contains sC -> definite covers.
	r = synth(ivs(8, 22), ivs(6, 24))
	s = synth(nil, ivs(10, 12))
	wantDefinite(t, IFEquals(r, s), de9im.Covers)

	// Branch 3b: rC contains sC but rP does not.
	r = synth(ivs(11, 12), ivs(6, 24))
	wantRefine(t, IFEquals(r, s), de9im.Covers, de9im.Intersects)

	// Branch 4: C lists disjoint -> definite disjoint.
	r = synth(nil, ivs(0, 5))
	s = synth(nil, ivs(10, 15))
	wantDefinite(t, IFEquals(r, s), de9im.Disjoint)

	// Branch 5: C overlap with P evidence -> definite intersects.
	r = synth(ivs(3, 6), ivs(0, 8))
	s = synth(nil, ivs(5, 15))
	wantDefinite(t, IFEquals(r, s), de9im.Intersects)

	// Branch 6: C overlap, no P evidence.
	r = synth(nil, ivs(0, 8))
	s = synth(nil, ivs(5, 15))
	wantRefine(t, IFEquals(r, s), de9im.Disjoint, de9im.Meets, de9im.Intersects)
}

func TestIFInsideBranches(t *testing.T) {
	// Disjoint C lists.
	r := synth(nil, ivs(0, 4))
	s := synth(nil, ivs(10, 20))
	wantDefinite(t, IFInside(r, s), de9im.Disjoint)

	// rC inside sP -> definite (strict) inside.
	r = synth(nil, ivs(12, 14))
	s = synth(ivs(10, 20), ivs(8, 22))
	wantDefinite(t, IFInside(r, s), de9im.Inside)

	// rC inside sC, overlaps sP but not inside it -> containment refine.
	r = synth(nil, ivs(9, 14))
	s = synth(ivs(10, 20), ivs(8, 22))
	wantRefine(t, IFInside(r, s), de9im.Inside, de9im.CoveredBy, de9im.Intersects)

	// rC inside sC, no sP contact, but rP touches sC -> containment refine.
	r = synth(ivs(9, 10), ivs(8, 14))
	s = synth(ivs(30, 31), ivs(5, 22))
	wantRefine(t, IFInside(r, s), de9im.Inside, de9im.CoveredBy, de9im.Intersects)

	// rC inside sC with no P evidence at all -> full candidate set.
	r = synth(nil, ivs(8, 14))
	s = synth(nil, ivs(5, 22))
	wantRefine(t, IFInside(r, s),
		de9im.Disjoint, de9im.Inside, de9im.CoveredBy, de9im.Meets, de9im.Intersects)

	// rC escapes sC with P evidence -> definite intersects.
	r = synth(nil, ivs(4, 14))
	s = synth(ivs(6, 8), ivs(5, 22))
	wantDefinite(t, IFInside(r, s), de9im.Intersects)

	// rC escapes sC, no P evidence -> surface-contact refine.
	r = synth(nil, ivs(4, 14))
	s = synth(nil, ivs(5, 22))
	wantRefine(t, IFInside(r, s), de9im.Disjoint, de9im.Meets, de9im.Intersects)
}

func TestIFContainsBranches(t *testing.T) {
	// Mirror of IFInside: definite contains.
	r := synth(ivs(10, 20), ivs(8, 22))
	s := synth(nil, ivs(12, 14))
	wantDefinite(t, IFContains(r, s), de9im.Contains)

	// rP overlaps sC without containing it.
	r = synth(ivs(10, 13), ivs(8, 22))
	s = synth(nil, ivs(12, 16))
	wantRefine(t, IFContains(r, s), de9im.Contains, de9im.Covers, de9im.Intersects)

	// sP inside rC evidence without rP.
	r = synth(nil, ivs(8, 22))
	s = synth(ivs(12, 13), ivs(11, 16))
	wantRefine(t, IFContains(r, s), de9im.Contains, de9im.Covers, de9im.Intersects)

	// No P evidence.
	r = synth(nil, ivs(8, 22))
	s = synth(nil, ivs(12, 16))
	wantRefine(t, IFContains(r, s),
		de9im.Disjoint, de9im.Contains, de9im.Covers, de9im.Meets, de9im.Intersects)

	// sC escapes rC with interior evidence.
	r = synth(ivs(9, 11), ivs(8, 22))
	s = synth(nil, ivs(10, 30))
	wantDefinite(t, IFContains(r, s), de9im.Intersects)

	// Disjoint.
	r = synth(nil, ivs(0, 2))
	s = synth(nil, ivs(5, 6))
	wantDefinite(t, IFContains(r, s), de9im.Disjoint)
}

func TestIFIntersectsBranches(t *testing.T) {
	r := synth(nil, ivs(0, 4))
	s := synth(nil, ivs(10, 12))
	wantDefinite(t, IFIntersects(r, s), de9im.Disjoint)

	r = synth(ivs(1, 3), ivs(0, 6))
	s = synth(nil, ivs(2, 10))
	wantDefinite(t, IFIntersects(r, s), de9im.Intersects)

	r = synth(nil, ivs(0, 6))
	s = synth(ivs(3, 4), ivs(2, 10))
	wantDefinite(t, IFIntersects(r, s), de9im.Intersects)

	r = synth(nil, ivs(0, 6))
	s = synth(nil, ivs(2, 10))
	wantRefine(t, IFIntersects(r, s), de9im.Disjoint, de9im.Meets, de9im.Intersects)
}
