package core

import (
	"math/rand"
	"testing"
)

// TestZeroAllocSweeper pins the whole observed hot path — MBR filter,
// intermediate filter, scratch-based refinement, sink delivery — to zero
// heap allocations per pair once objects are warm (wired into
// `make bench`). This is the loop every sweep and every serving request
// runs; one allocation here is millions per join.
func TestZeroAllocSweeper(t *testing.T) {
	b := testBuilder(t)
	rng := rand.New(rand.NewSource(23))
	pairs := testPairs(t, b, rng)
	for _, m := range Methods {
		sweep := NewSweeper(m, NopSink{})
		// Warm up: build every Prepared, force interior points via the
		// probe fallbacks, and grow the scratch.
		for _, p := range pairs {
			sweep.FindRelation(p[0], p[1])
		}
		allocs := testing.AllocsPerRun(20, func() {
			for _, p := range pairs {
				sweep.FindRelation(p[0], p[1])
			}
		})
		if allocs != 0 {
			t.Errorf("%s: sweep over %d warm pairs allocates %v per run, want 0",
				m, len(pairs), allocs)
		}
	}
}
