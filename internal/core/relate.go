package core

import (
	"repro/internal/de9im"
	"repro/internal/interval"
	"repro/internal/mbrrel"
)

// TriState is the verdict of a relate_p intermediate filter.
type TriState int8

// Relate filter verdicts.
const (
	Unknown TriState = iota // refinement needed
	No                      // the predicate definitely does not hold
	Yes                     // the predicate definitely holds
)

func (t TriState) String() string {
	switch t {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// relateFilter runs the Fig. 6 interval-list filter for predicate pred on
// an MBR-intersecting pair.
func relateFilter(pred de9im.Relation, r, s *Object) TriState {
	ra, sa := &r.Approx, &s.Approx
	switch pred {
	case de9im.Inside, de9im.CoveredBy:
		if !interval.Inside(ra.C, sa.C) {
			return No
		}
		if interval.Inside(ra.C, sa.P) {
			return Yes
		}
		return Unknown
	case de9im.Contains, de9im.Covers:
		if !interval.Contains(ra.C, sa.C) {
			return No
		}
		if interval.Contains(ra.P, sa.C) {
			return Yes
		}
		return Unknown
	case de9im.Meets:
		if !interval.Overlap(ra.C, sa.C) {
			return No // disjoint, no boundary contact
		}
		if interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C) {
			return No // interiors certainly intersect
		}
		return Unknown
	case de9im.Equals:
		if !interval.Match(ra.C, sa.C) {
			return No
		}
		if !interval.Match(ra.P, sa.P) {
			return No
		}
		return Unknown
	case de9im.Intersects:
		if !interval.Overlap(ra.C, sa.C) {
			return No
		}
		if interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C) {
			return Yes
		}
		return Unknown
	default: // Disjoint: the negation of intersects
		if !interval.Overlap(ra.C, sa.C) {
			return Yes
		}
		if interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C) {
			return No
		}
		return Unknown
	}
}

// RelateResult is the outcome of one relate_p evaluation.
type RelateResult struct {
	Holds   bool
	Refined bool
}

// RelatePred answers the relate_p problem (Sec. 3.3): does relation pred
// hold for the pair (r, s)? The P+C method first rejects predicates that
// are impossible under the MBR intersection case, then runs the Fig. 6
// interval filter, refining only on Unknown. The other methods answer via
// their find-relation pipeline.
func RelatePred(m Method, r, s *Object, pred de9im.Relation) RelateResult {
	c := mbrrel.Classify(r.MBR, s.MBR)
	if c == mbrrel.DisjointMBRs {
		return RelateResult{Holds: pred == de9im.Disjoint}
	}
	if m != PC {
		res := FindRelation(m, r, s)
		return RelateResult{Holds: Implies(res.Relation, pred), Refined: res.Refined}
	}
	if !mbrrel.Possible(c, pred) {
		return RelateResult{Holds: false}
	}
	if rel, ok := mbrrel.Definite(c); ok {
		return RelateResult{Holds: Implies(rel, pred)}
	}
	switch relateFilter(pred, r, s) {
	case Yes:
		return RelateResult{Holds: true}
	case No:
		return RelateResult{Holds: false}
	default:
		return RelateResult{Holds: de9im.Holds(pred, Refine(r, s)), Refined: true}
	}
}

// Implies reports whether a pair whose most specific relation is rel also
// satisfies predicate pred, following the generalization hierarchy of
// Fig. 2: equals implies covered by and covers; inside implies covered by;
// contains implies covers; everything except disjoint implies intersects.
func Implies(rel, pred de9im.Relation) bool {
	if rel == pred {
		return true
	}
	switch pred {
	case de9im.Intersects:
		return rel != de9im.Disjoint
	case de9im.CoveredBy:
		return rel == de9im.Equals || rel == de9im.Inside
	case de9im.Covers:
		return rel == de9im.Equals || rel == de9im.Contains
	default:
		return false
	}
}
