package core

import (
	"time"

	"repro/internal/de9im"
	"repro/internal/mbrrel"
	"repro/internal/obs"
)

// Verdict identifies which pipeline stage settled a pair — the unit of
// the paper's cost accounting (Fig. 7b counts refinements, Fig. 8b
// splits stage time).
type Verdict uint8

// The pipeline stages, in evaluation order.
const (
	// VerdictMBR: the MBR filter alone settled the pair (disjoint MBRs
	// or a definite Fig. 4 case).
	VerdictMBR Verdict = iota
	// VerdictIF: the intermediate filter settled the pair from the
	// interval lists, without touching exact geometry.
	VerdictIF
	// VerdictRefine: the pair was undetermined after all filters and the
	// DE-9IM matrix had to be computed.
	VerdictRefine
	numVerdicts
)

// NumVerdicts is the number of pipeline stages that can settle a pair.
const NumVerdicts = int(numVerdicts)

func (v Verdict) String() string {
	switch v {
	case VerdictMBR:
		return "mbr"
	case VerdictIF:
		return "if"
	case VerdictRefine:
		return "refine"
	default:
		return "unknown"
	}
}

// PipelineSink receives one event per pair evaluated by the observed
// find-relation path: the settled result, the stage that settled it, and
// the measured filter and refinement durations (filter excludes
// refinement; their sum is the pair's total). Implementations used from
// the parallel sweep must either be confined to one worker or be safe
// for concurrent use (PipelineMetrics is).
type PipelineSink interface {
	ObservePair(m Method, res Result, v Verdict, filter, refine time.Duration)
}

// NopSink is a PipelineSink that discards every event — the benchmark
// baseline for measuring the observed path's intrinsic overhead.
type NopSink struct{}

// ObservePair implements PipelineSink.
func (NopSink) ObservePair(Method, Result, Verdict, time.Duration, time.Duration) {}

// SinkFunc adapts a function to PipelineSink, for call sites (request
// tracing, ad-hoc accounting) that don't warrant a named type.
type SinkFunc func(m Method, res Result, v Verdict, filter, refine time.Duration)

// ObservePair implements PipelineSink.
func (f SinkFunc) ObservePair(m Method, res Result, v Verdict, filter, refine time.Duration) {
	f(m, res, v, filter, refine)
}

// verdictOf classifies a settled result: refined pairs report
// VerdictRefine; unrefined pairs were settled either by the MBR filter
// (disjoint or definite case) or, failing that, by the intermediate
// filter.
func verdictOf(res Result) Verdict {
	if res.Refined {
		return VerdictRefine
	}
	if res.Case == mbrrel.DisjointMBRs {
		return VerdictMBR
	}
	if _, ok := mbrrel.Definite(res.Case); ok {
		return VerdictMBR
	}
	return VerdictIF
}

// FindRelationObserved is FindRelation with per-pair telemetry delivered
// to sink. A nil sink short-circuits to the plain path, so call sites
// can stay instrumented permanently at the cost of one comparison.
func FindRelationObserved(m Method, r, s *Object, sink PipelineSink) Result {
	return FindRelationObservedWith(m, r, s, Refine, sink)
}

// FindRelationObservedWith is FindRelationObserved with a custom
// refinement step. The refiner is timed separately from the filter
// stages, fixing the classic attribution mistake of charging a refined
// pair's filter time to refinement: filter = total − refine, measured
// per pair, regardless of how many filters ran before the verdict.
func FindRelationObservedWith(m Method, r, s *Object, refine Refiner, sink PipelineSink) Result {
	if sink == nil {
		return FindRelationWith(m, r, s, refine)
	}
	sw := obs.NewStopwatch()
	var refineTime time.Duration
	timed := func(a, b *Object) de9im.Matrix {
		t0 := time.Now()
		mat := refine(a, b)
		refineTime += time.Since(t0)
		return mat
	}
	res := FindRelationWith(m, r, s, timed)
	total := sw.Lap()
	sink.ObservePair(m, res, verdictOf(res), total-refineTime, refineTime)
	return res
}

// PipelineMetrics is the standard registry-backed PipelineSink: verdict
// counters that sum to the pair total, per-relation tallies, and
// per-stage latency histograms, all registered under prefix. Safe for
// concurrent use.
type PipelineMetrics struct {
	Pairs     *obs.Counter
	Verdicts  [NumVerdicts]*obs.Counter
	Relations [de9im.NumRelations]*obs.Counter
	// FilterSeconds observes every pair's filter-stage time;
	// RefineSeconds only pairs that refined.
	FilterSeconds *obs.Histogram
	RefineSeconds *obs.Histogram
}

// NewPipelineMetrics registers the pipeline metric family under prefix
// (e.g. "pipeline" -> pipeline_pairs_total,
// pipeline_verdict_total{stage="..."} ...) and returns the sink.
func NewPipelineMetrics(reg *obs.Registry, prefix string) *PipelineMetrics {
	p := &PipelineMetrics{
		Pairs:         reg.Counter(prefix + "_pairs_total"),
		FilterSeconds: reg.Histogram(prefix+"_filter_seconds", obs.DurationBuckets),
		RefineSeconds: reg.Histogram(prefix+"_refine_seconds", obs.DurationBuckets),
	}
	for v := Verdict(0); v < numVerdicts; v++ {
		p.Verdicts[v] = reg.Counter(obs.Name(prefix+"_verdict_total", "stage", v.String()))
	}
	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		p.Relations[rel] = reg.Counter(obs.Name(prefix+"_relation_total", "relation", rel.String()))
	}
	return p
}

// ObservePair implements PipelineSink.
func (p *PipelineMetrics) ObservePair(_ Method, res Result, v Verdict, filter, refine time.Duration) {
	p.Pairs.Inc()
	p.Verdicts[v].Inc()
	p.Relations[res.Relation].Inc()
	p.FilterSeconds.ObserveDuration(filter)
	if v == VerdictRefine {
		p.RefineSeconds.ObserveDuration(refine)
	}
}
