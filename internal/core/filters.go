package core

import (
	"repro/internal/de9im"
	"repro/internal/interval"
)

// Outcome is the result of an intermediate filter: either the definite
// most specific relation, or the set of candidate relations the
// refinement step must distinguish.
type Outcome struct {
	Definite   bool
	Relation   de9im.Relation    // valid when Definite
	Candidates de9im.RelationSet // valid when !Definite
}

func definite(rel de9im.Relation) Outcome {
	return Outcome{Definite: true, Relation: rel}
}

func refine(rels ...de9im.Relation) Outcome {
	return Outcome{Candidates: de9im.NewRelationSet(rels...)}
}

// IFEquals is the intermediate filter for pairs with equal MBRs (Fig. 5).
// Identical conservative lists leave {equals, covered by, covers,
// intersects} for refinement; one-sided containment of the conservative
// lists narrows to the corresponding cover relation, verified exactly when
// the contained conservative list fits in the other's progressive list.
func IFEquals(r, s *Object) Outcome {
	ra, sa := &r.Approx, &s.Approx
	switch {
	case interval.Match(ra.C, sa.C):
		return refine(de9im.Equals, de9im.CoveredBy, de9im.Covers, de9im.Intersects)
	case interval.Inside(ra.C, sa.C):
		if interval.Inside(ra.C, sa.P) {
			return definite(de9im.CoveredBy)
		}
		return refine(de9im.CoveredBy, de9im.Intersects)
	case interval.Contains(ra.C, sa.C):
		if interval.Contains(ra.P, sa.C) {
			return definite(de9im.Covers)
		}
		return refine(de9im.Covers, de9im.Intersects)
	case !interval.Overlap(ra.C, sa.C):
		return definite(de9im.Disjoint)
	case interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C):
		// A cell fully inside one object touched by the other: the
		// interiors certainly intersect, and the conservative lists ruled
		// out every containment, so intersects is the most specific.
		return definite(de9im.Intersects)
	default:
		return refine(de9im.Disjoint, de9im.Meets, de9im.Intersects)
	}
}

// IFInside is the intermediate filter for MBR(r) inside MBR(s) (Fig. 5).
// The candidate relations are disjoint, inside, covered by, meets and
// intersects.
func IFInside(r, s *Object) Outcome {
	ra, sa := &r.Approx, &s.Approx
	if !interval.Overlap(ra.C, sa.C) {
		return definite(de9im.Disjoint)
	}
	if interval.Inside(ra.C, sa.C) {
		if len(sa.P) > 0 {
			if interval.Inside(ra.C, sa.P) {
				// Every cell r touches lies strictly inside s: definite
				// (strict) inside, no boundary contact possible.
				return definite(de9im.Inside)
			}
			if interval.Overlap(ra.C, sa.P) {
				// r reaches s's interior: refine among the containments.
				return refine(de9im.Inside, de9im.CoveredBy, de9im.Intersects)
			}
		}
		if interval.Overlap(ra.P, sa.C) {
			return refine(de9im.Inside, de9im.CoveredBy, de9im.Intersects)
		}
		return refine(de9im.Disjoint, de9im.Inside, de9im.CoveredBy, de9im.Meets, de9im.Intersects)
	}
	// r touches cells outside s's conservative cells: r ⊄ s, so no
	// containment relation can hold.
	if interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C) {
		return definite(de9im.Intersects)
	}
	return refine(de9im.Disjoint, de9im.Meets, de9im.Intersects)
}

// IFContains is the intermediate filter for MBR(r) containing MBR(s)
// (Fig. 5); it mirrors IFInside with the operand roles swapped.
func IFContains(r, s *Object) Outcome {
	ra, sa := &r.Approx, &s.Approx
	if !interval.Overlap(ra.C, sa.C) {
		return definite(de9im.Disjoint)
	}
	if interval.Contains(ra.C, sa.C) {
		if len(ra.P) > 0 {
			if interval.Contains(ra.P, sa.C) {
				return definite(de9im.Contains)
			}
			if interval.Overlap(ra.P, sa.C) {
				return refine(de9im.Contains, de9im.Covers, de9im.Intersects)
			}
		}
		if interval.Overlap(ra.C, sa.P) {
			return refine(de9im.Contains, de9im.Covers, de9im.Intersects)
		}
		return refine(de9im.Disjoint, de9im.Contains, de9im.Covers, de9im.Meets, de9im.Intersects)
	}
	if interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C) {
		return definite(de9im.Intersects)
	}
	return refine(de9im.Disjoint, de9im.Meets, de9im.Intersects)
}

// IFIntersects is the intermediate filter for partially overlapping MBRs
// (Fig. 5): only disjoint, meets and intersects are possible.
func IFIntersects(r, s *Object) Outcome {
	ra, sa := &r.Approx, &s.Approx
	if !interval.Overlap(ra.C, sa.C) {
		return definite(de9im.Disjoint)
	}
	if interval.Overlap(ra.C, sa.P) || interval.Overlap(ra.P, sa.C) {
		return definite(de9im.Intersects)
	}
	return refine(de9im.Disjoint, de9im.Meets, de9im.Intersects)
}
