package core

import (
	"repro/internal/de9im"
	"repro/internal/mbrrel"
)

// RelateMask answers an arbitrary DE-9IM mask query for a pair, the
// three-argument ST_Relate form of spatial SQL. When the mask is one of
// the Table 1 masks of a named relation, the query is answered through
// the corresponding relate_p fast path; otherwise the pair's matrix is
// computed, short-cutting only the MBR-disjoint case (whose matrix is
// known without geometry).
func RelateMask(m Method, r, s *Object, mask de9im.Mask) RelateResult {
	if rel, ok := maskRelation(mask); ok {
		return RelatePred(m, r, s, rel)
	}
	if mbrrel.Classify(r.MBR, s.MBR) == mbrrel.DisjointMBRs {
		return RelateResult{Holds: mask.Matches(disjointMatrix(r, s))}
	}
	return RelateResult{Holds: mask.Matches(Refine(r, s)), Refined: true}
}

// maskRelation reverse-maps a mask to the relation whose Table 1 mask set
// consists of exactly that mask.
func maskRelation(mask de9im.Mask) (de9im.Relation, bool) {
	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		ms := de9im.MasksOf(rel)
		if len(ms) == 1 && ms[0] == mask {
			return rel, true
		}
	}
	return 0, false
}

// disjointMatrix is the exact DE-9IM matrix of a pair known to be
// disjoint with both geometries non-empty: FF2FF1212.
func disjointMatrix(_, _ *Object) de9im.Matrix {
	m, err := de9im.ParseMatrix("FF2FF1212")
	if err != nil {
		panic(err)
	}
	return m
}
