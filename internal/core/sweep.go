package core

import (
	"time"

	"repro/internal/de9im"
)

// Sweeper runs the observed find-relation path over many pairs with zero
// steady-state allocations. FindRelationObservedWith builds a fresh
// timing closure per pair; over a million-pair sweep those closures (and
// the pooled-scratch round trips inside the default Refine) are pure
// overhead. A Sweeper binds the timed refiner, the noding scratch, and
// the per-pair accounting once, so the sweep loop's only work is the
// pipeline itself.
//
// A Sweeper is not safe for concurrent use: parallel sweeps give each
// worker its own (they are cheap — one scratch and two closures).
type Sweeper struct {
	method     Method
	sink       PipelineSink
	sc         de9im.Scratch
	refineTime time.Duration
	timed      Refiner // bound once to timedRefine
}

// NewSweeper returns a sweeper for pipeline m reporting per-pair events
// to sink (nil sink skips observation, matching FindRelationObserved).
func NewSweeper(m Method, sink PipelineSink) *Sweeper {
	sw := &Sweeper{method: m, sink: sink}
	sw.timed = sw.timedRefine
	return sw
}

// timedRefine is the sweeper's refinement step: the objects' cached
// Prepared structures plus the sweeper's own scratch, with the stage
// time accumulated for the sink.
func (sw *Sweeper) timedRefine(r, s *Object) de9im.Matrix {
	t0 := time.Now()
	m := de9im.RelateScratch(r.Prepared(), s.Prepared(), &sw.sc)
	sw.refineTime += time.Since(t0)
	return m
}

// FindRelation evaluates one pair through the sweeper's pipeline,
// delivering the same event FindRelationObserved would: the settled
// result, the verdict stage, and filter/refine durations with filter =
// total − refine.
func (sw *Sweeper) FindRelation(r, s *Object) Result {
	if sw.sink == nil {
		return FindRelationWith(sw.method, r, s, sw.timed)
	}
	start := time.Now()
	sw.refineTime = 0
	res := FindRelationWith(sw.method, r, s, sw.timed)
	total := time.Since(start)
	sw.sink.ObservePair(sw.method, res, verdictOf(res), total-sw.refineTime, sw.refineTime)
	return res
}
