package core

import (
	"repro/internal/april"
	"repro/internal/de9im"
	"repro/internal/mbrrel"
)

// Method selects one of the four evaluated find-relation pipelines
// (Sec. 4 of the paper).
type Method uint8

// The evaluated methods.
const (
	// ST2 is the standard two-phase pipeline: MBR filter, then DE-9IM
	// refinement against all masks.
	ST2 Method = iota
	// OP2 is the optimized two-phase pipeline: the enhanced MBR filter of
	// Sec. 3.1 restricts the candidate relations before refinement.
	OP2
	// APRIL adds the intersection-only APRIL intermediate filter: pairs
	// whose conservative lists are disjoint skip refinement; everything
	// else is refined.
	APRIL
	// PC is the paper's P+C pipeline (Sec. 3): the enhanced MBR filter
	// routes each pair to a specialized intermediate filter that can
	// settle the most specific relation from the interval lists alone.
	PC
	numMethods
)

// NumMethods is the number of pipelines.
const NumMethods = int(numMethods)

// Methods lists all pipelines in the paper's presentation order.
var Methods = [...]Method{ST2, OP2, APRIL, PC}

func (m Method) String() string {
	switch m {
	case ST2:
		return "ST2"
	case OP2:
		return "OP2"
	case APRIL:
		return "APRIL"
	case PC:
		return "P+C"
	default:
		return "unknown"
	}
}

// Result is the outcome of one find-relation evaluation.
type Result struct {
	Relation de9im.Relation
	// Refined reports whether the DE-9IM matrix had to be computed: the
	// pair was undetermined after the filter stages (Fig. 7b counts these).
	Refined bool
	// Case is the MBR intersection case the pair fell into.
	Case mbrrel.Case
}

// Refiner computes the DE-9IM matrix of a pair's exact geometries; the
// default is Refine. Custom refiners let callers control where geometry
// comes from (e.g. a disk store with I/O accounting) without touching
// the pipeline logic.
type Refiner func(r, s *Object) de9im.Matrix

// FindRelation determines the most specific topological relation of the
// pair (r, s) using pipeline m. Pairs with disjoint MBRs are answered
// directly; every pipeline assumes candidate pairs come from an MBR
// intersection join.
func FindRelation(m Method, r, s *Object) Result {
	return FindRelationWith(m, r, s, Refine)
}

// FindRelationWith is FindRelation with a custom refinement step. The
// filter stages only ever touch MBRs and approximations; exact geometry
// is accessed exclusively through the refiner.
func FindRelationWith(m Method, r, s *Object, refine Refiner) Result {
	c := mbrrel.Classify(r.MBR, s.MBR)
	if c == mbrrel.DisjointMBRs {
		return Result{Relation: de9im.Disjoint, Case: c}
	}
	switch m {
	case ST2:
		return Result{
			Relation: de9im.MostSpecific(refine(r, s), de9im.AllRelations),
			Refined:  true,
			Case:     c,
		}
	case OP2:
		if rel, ok := mbrrel.Definite(c); ok {
			return Result{Relation: rel, Case: c}
		}
		return Result{
			Relation: de9im.MostSpecific(refine(r, s), mbrrel.Candidates(c)),
			Refined:  true,
			Case:     c,
		}
	case APRIL:
		if rel, ok := mbrrel.Definite(c); ok {
			return Result{Relation: rel, Case: c}
		}
		cands := mbrrel.Candidates(c)
		switch april.IntersectionFilter(r.Approx, s.Approx) {
		case april.DefiniteDisjoint:
			return Result{Relation: de9im.Disjoint, Case: c}
		case april.DefiniteIntersect:
			// The pair certainly intersects with overlapping interiors,
			// but a more specific relation may hold: refinement is still
			// needed (Sec. 4, APRIL baseline), only with disjoint and
			// meets pruned from the masks.
			cands = cands.Without(de9im.Disjoint).Without(de9im.Meets)
		}
		return Result{
			Relation: de9im.MostSpecific(refine(r, s), cands),
			Refined:  true,
			Case:     c,
		}
	default: // PC: Algorithm 1
		if rel, ok := mbrrel.Definite(c); ok {
			return Result{Relation: rel, Case: c}
		}
		var out Outcome
		switch c {
		case mbrrel.EqualMBRs:
			out = IFEquals(r, s)
		case mbrrel.RInsideS:
			out = IFInside(r, s)
		case mbrrel.RContainsS:
			out = IFContains(r, s)
		default:
			out = IFIntersects(r, s)
		}
		if out.Definite {
			return Result{Relation: out.Relation, Case: c}
		}
		return Result{
			Relation: de9im.MostSpecific(refine(r, s), out.Candidates),
			Refined:  true,
			Case:     c,
		}
	}
}
