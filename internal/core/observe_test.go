package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/de9im"
	"repro/internal/obs"
)

// recordSink captures every event for inspection.
type recordSink struct {
	events []struct {
		m       Method
		res     Result
		v       Verdict
		filter  time.Duration
		refine  time.Duration
	}
}

func (r *recordSink) ObservePair(m Method, res Result, v Verdict, filter, refine time.Duration) {
	r.events = append(r.events, struct {
		m       Method
		res     Result
		v       Verdict
		filter  time.Duration
		refine  time.Duration
	}{m, res, v, filter, refine})
}

// TestObservedMatchesPlain: the observed path must return bit-identical
// results to the plain path for every method and pair, with any sink.
func TestObservedMatchesPlain(t *testing.T) {
	b := testBuilder(t)
	rng := rand.New(rand.NewSource(2026))
	pairs := testPairs(t, b, rng)
	for _, m := range Methods {
		sink := &recordSink{}
		for i, pr := range pairs {
			want := FindRelation(m, pr[0], pr[1])
			got := FindRelationObserved(m, pr[0], pr[1], sink)
			if got != want {
				t.Fatalf("%v pair %d: observed %+v != plain %+v", m, i, got, want)
			}
			if nilGot := FindRelationObserved(m, pr[0], pr[1], nil); nilGot != want {
				t.Fatalf("%v pair %d: nil-sink path diverged", m, i)
			}
		}
		if len(sink.events) != len(pairs) {
			t.Fatalf("%v: %d events for %d pairs", m, len(sink.events), len(pairs))
		}
	}
}

// TestVerdictClassification checks the stage attribution on pairs with a
// known settling stage.
func TestVerdictClassification(t *testing.T) {
	b := testBuilder(t)
	sink := &recordSink{}
	last := func() Verdict { return sink.events[len(sink.events)-1].v }

	// Disjoint MBRs: settled by the MBR filter under every method.
	r := obj(t, b, 0, rect(1, 1, 4, 4))
	s := obj(t, b, 1, rect(50, 50, 60, 60))
	for _, m := range Methods {
		FindRelationObserved(m, r, s, sink)
		if last() != VerdictMBR {
			t.Errorf("%v: disjoint MBRs classified %v", m, last())
		}
	}

	// Nested pair: the P+C intermediate filter settles it.
	lake := obj(t, b, 2, rect(40, 40, 70, 70))
	park := obj(t, b, 3, rect(10, 10, 120, 120))
	FindRelationObserved(PC, lake, park, sink)
	if last() != VerdictIF {
		t.Errorf("P+C nested pair classified %v, want if", last())
	}

	// ST2 refines everything with intersecting MBRs.
	FindRelationObserved(ST2, lake, park, sink)
	if last() != VerdictRefine {
		t.Errorf("ST2 classified %v, want refine", last())
	}
	for _, ev := range sink.events {
		if (ev.v == VerdictRefine) != ev.res.Refined {
			t.Errorf("verdict %v disagrees with Refined=%t", ev.v, ev.res.Refined)
		}
		if ev.filter < 0 || ev.refine < 0 {
			t.Errorf("negative stage time: filter=%v refine=%v", ev.filter, ev.refine)
		}
		if ev.v != VerdictRefine && ev.refine != 0 {
			t.Errorf("unrefined pair charged refine time %v", ev.refine)
		}
	}
}

// TestPipelineMetrics: the registry-backed sink's verdict counters must
// sum to the pair total, and relation tallies must match a plain sweep.
func TestPipelineMetrics(t *testing.T) {
	b := testBuilder(t)
	rng := rand.New(rand.NewSource(7))
	pairs := testPairs(t, b, rng)
	reg := obs.NewRegistry()
	pm := NewPipelineMetrics(reg, "pipeline")

	var wantRel [de9im.NumRelations]int64
	refined := 0
	for _, pr := range pairs {
		res := FindRelationObserved(PC, pr[0], pr[1], pm)
		wantRel[res.Relation]++
		if res.Refined {
			refined++
		}
	}
	if got := pm.Pairs.Value(); got != int64(len(pairs)) {
		t.Errorf("pairs_total = %d, want %d", got, len(pairs))
	}
	var verdictSum int64
	for v := Verdict(0); int(v) < NumVerdicts; v++ {
		verdictSum += pm.Verdicts[v].Value()
	}
	if verdictSum != int64(len(pairs)) {
		t.Errorf("verdict counters sum to %d, want %d", verdictSum, len(pairs))
	}
	if got := pm.Verdicts[VerdictRefine].Value(); got != int64(refined) {
		t.Errorf("refine verdicts = %d, want %d", got, refined)
	}
	for rel, want := range wantRel {
		if got := pm.Relations[rel].Value(); got != want {
			t.Errorf("relation %v tally = %d, want %d", de9im.Relation(rel), got, want)
		}
	}
	if pm.FilterSeconds.Count() != int64(len(pairs)) {
		t.Errorf("filter histogram observed %d of %d pairs", pm.FilterSeconds.Count(), len(pairs))
	}
	if pm.RefineSeconds.Count() != int64(refined) {
		t.Errorf("refine histogram observed %d of %d refined pairs", pm.RefineSeconds.Count(), refined)
	}
	// The registry names must be reconstructable for scrapers.
	if reg.Counter(obs.Name("pipeline_verdict_total", "stage", "refine")).Value() != int64(refined) {
		t.Error("refine verdict counter not reachable by name")
	}
}

func TestVerdictString(t *testing.T) {
	names := map[Verdict]string{VerdictMBR: "mbr", VerdictIF: "if", VerdictRefine: "refine"}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if Verdict(9).String() != "unknown" {
		t.Error("unknown verdict name")
	}
}

func TestNopSink(t *testing.T) {
	b := testBuilder(t)
	r := obj(t, b, 0, rect(1, 1, 40, 40))
	s := obj(t, b, 1, rect(5, 5, 30, 30))
	want := FindRelation(PC, r, s)
	if got := FindRelationObserved(PC, r, s, NopSink{}); got != want {
		t.Errorf("NopSink path: %+v != %+v", got, want)
	}
}
