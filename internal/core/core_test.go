package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/april"
	"repro/internal/de9im"
	"repro/internal/geom"
)

func testSpace() geom.MBR { return geom.MBR{MinX: 0, MinY: 0, MaxX: 128, MaxY: 128} }

func testBuilder(t *testing.T) *april.Builder {
	t.Helper()
	return april.NewBuilder(testSpace(), 10)
}

func rect(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
}

func randBlob(rng *rand.Rand, cx, cy, radius float64, n int) *geom.Polygon {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.8
	}
	ring := make(geom.Ring, n)
	for i, a := range angles {
		r := radius * (0.4 + 0.6*rng.Float64())
		ring[i] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return geom.NewPolygon(ring)
}

func obj(t *testing.T, b *april.Builder, id int, p *geom.Polygon) *Object {
	t.Helper()
	o, err := NewObject(id, p, b)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// testPairs builds a workload covering every relation: scattered blobs,
// engineered nests, duplicates, shared-edge tiles and shared-edge
// containment.
func testPairs(t *testing.T, b *april.Builder, rng *rand.Rand) [][2]*Object {
	t.Helper()
	var pairs [][2]*Object
	id := 0
	add := func(p, q *geom.Polygon) {
		pairs = append(pairs, [2]*Object{obj(t, b, id, p), obj(t, b, id+1, q)})
		id += 2
	}
	// Random blob pairs: mixture of disjoint/overlap.
	for i := 0; i < 40; i++ {
		add(
			randBlob(rng, 20+rng.Float64()*88, 20+rng.Float64()*88, 3+rng.Float64()*14, 8+rng.Intn(40)),
			randBlob(rng, 20+rng.Float64()*88, 20+rng.Float64()*88, 3+rng.Float64()*14, 8+rng.Intn(40)),
		)
	}
	// Nested pairs: child strictly inside parent.
	for i := 0; i < 12; i++ {
		parent := randBlob(rng, 40+rng.Float64()*48, 40+rng.Float64()*48, 14+rng.Float64()*10, 16+rng.Intn(40))
		ip := geom.PointOnSurface(parent)
		child := parent.ScaleAbout(ip, 0.12+rng.Float64()*0.1)
		add(child, parent)
		add(parent, child)
	}
	// Duplicates.
	for i := 0; i < 6; i++ {
		p := randBlob(rng, 30+rng.Float64()*60, 30+rng.Float64()*60, 5+rng.Float64()*10, 10+rng.Intn(30))
		add(p, p.Clone())
	}
	// Shared-edge tiles (meets).
	for i := 0; i < 8; i++ {
		x := 8 + rng.Float64()*80
		y := 8 + rng.Float64()*80
		w := 4 + rng.Float64()*10
		h := 4 + rng.Float64()*10
		add(rect(x, y, x+w, y+h), rect(x+w, y, x+w+3+rng.Float64()*8, y+h*rng.Float64()+1))
	}
	// Covered-by: child sharing part of the parent's left edge.
	for i := 0; i < 6; i++ {
		x := 10 + rng.Float64()*60
		y := 10 + rng.Float64()*60
		add(rect(x, y+4, x+8, y+12), rect(x, y, x+20, y+20))
	}
	return pairs
}

// TestPipelinesAgree is the central soundness test of the reproduction:
// every pipeline must report the same most specific relation for every
// pair (Invariant 4 in DESIGN.md), and a pipeline with stronger filters
// must never refine a pair that a weaker one settled.
func TestPipelinesAgree(t *testing.T) {
	b := testBuilder(t)
	rng := rand.New(rand.NewSource(2026))
	pairs := testPairs(t, b, rng)
	seen := make(map[de9im.Relation]int)
	for i, pr := range pairs {
		ref := FindRelation(ST2, pr[0], pr[1])
		seen[ref.Relation]++
		for _, m := range []Method{OP2, APRIL, PC} {
			got := FindRelation(m, pr[0], pr[1])
			if got.Relation != ref.Relation {
				t.Fatalf("pair %d: %v says %v, ST2 says %v (case %v)",
					i, m, got.Relation, ref.Relation, got.Case)
			}
		}
		pc := FindRelation(PC, pr[0], pr[1])
		ap := FindRelation(APRIL, pr[0], pr[1])
		if pc.Refined && !ap.Refined {
			t.Fatalf("pair %d: P+C refined but APRIL settled (relation %v)", i, ref.Relation)
		}
	}
	// The workload must actually exercise the interesting relations.
	for _, rel := range []de9im.Relation{de9im.Disjoint, de9im.Intersects, de9im.Inside, de9im.Contains, de9im.Equals, de9im.Meets, de9im.CoveredBy} {
		if seen[rel] == 0 {
			t.Errorf("workload never produced relation %v", rel)
		}
	}
}

// TestPCFilterEffectiveness: the P+C pipeline must settle strictly more
// pairs than APRIL on a containment-heavy workload (the paper's headline
// mechanism).
func TestPCFilterEffectiveness(t *testing.T) {
	b := testBuilder(t)
	rng := rand.New(rand.NewSource(7))
	pairs := testPairs(t, b, rng)
	var refAPRIL, refPC int
	for _, pr := range pairs {
		if FindRelation(APRIL, pr[0], pr[1]).Refined {
			refAPRIL++
		}
		if FindRelation(PC, pr[0], pr[1]).Refined {
			refPC++
		}
	}
	if refPC >= refAPRIL {
		t.Errorf("P+C refined %d pairs, APRIL %d: expected strictly fewer", refPC, refAPRIL)
	}
}

func TestFindRelationDisjointMBRs(t *testing.T) {
	b := testBuilder(t)
	r := obj(t, b, 0, rect(1, 1, 4, 4))
	s := obj(t, b, 1, rect(50, 50, 60, 60))
	for _, m := range Methods {
		res := FindRelation(m, r, s)
		if res.Relation != de9im.Disjoint || res.Refined {
			t.Errorf("%v: disjoint MBRs must shortcut: %+v", m, res)
		}
	}
}

func TestFindRelationCrossShortcut(t *testing.T) {
	b := testBuilder(t)
	// A wide bar and a tall bar crossing: every method except ST2 may use
	// the MBR cross shortcut; all must answer intersects.
	wide := obj(t, b, 0, rect(10, 50, 110, 60))
	tall := obj(t, b, 1, rect(50, 10, 60, 110))
	for _, m := range Methods {
		res := FindRelation(m, wide, tall)
		if res.Relation != de9im.Intersects {
			t.Errorf("%v: cross = %v", m, res.Relation)
		}
		if m != ST2 && res.Refined {
			t.Errorf("%v: cross case must not refine", m)
		}
	}
}

// TestDefiniteInsideNoRefinement: a deeply nested pair must be settled by
// the P+C intermediate filter without refinement (the Fig. 9 scenario).
func TestDefiniteInsideNoRefinement(t *testing.T) {
	b := testBuilder(t)
	lake := obj(t, b, 0, rect(40, 40, 70, 70))
	park := obj(t, b, 1, rect(10, 10, 120, 120))
	res := FindRelation(PC, lake, park)
	if res.Relation != de9im.Inside || res.Refined {
		t.Fatalf("lake-in-park: %+v, want definite inside", res)
	}
	res = FindRelation(PC, park, lake)
	if res.Relation != de9im.Contains || res.Refined {
		t.Fatalf("park-contains-lake: %+v, want definite contains", res)
	}
	// APRIL settles neither: it must refine both.
	if !FindRelation(APRIL, lake, park).Refined {
		t.Error("APRIL should refine the nested pair")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{ST2: "ST2", OP2: "OP2", APRIL: "APRIL", PC: "P+C"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if Method(99).String() != "unknown" {
		t.Error("unknown method name")
	}
	if len(Methods) != NumMethods {
		t.Error("Methods list incomplete")
	}
}

func TestTriStateString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" || Unknown.String() != "unknown" {
		t.Error("tristate names wrong")
	}
}
