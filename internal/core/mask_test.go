package core

import (
	"testing"

	"repro/internal/de9im"
)

func TestRelateMaskNamedRelations(t *testing.T) {
	b := testBuilder(t)
	inner := obj(t, b, 0, rect(30, 30, 60, 60))
	outer := obj(t, b, 1, rect(10, 10, 100, 100))

	// The inside mask routes through relate_p and needs no refinement on
	// a deeply nested pair.
	insideMask := de9im.MasksOf(de9im.Inside)[0]
	res := RelateMask(PC, inner, outer, insideMask)
	if !res.Holds || res.Refined {
		t.Errorf("inside mask: %+v, want definite true", res)
	}
	equalsMask := de9im.MasksOf(de9im.Equals)[0]
	res = RelateMask(PC, inner, outer, equalsMask)
	if res.Holds {
		t.Errorf("equals mask should not hold: %+v", res)
	}
}

func TestRelateMaskArbitrary(t *testing.T) {
	b := testBuilder(t)
	a := obj(t, b, 0, rect(0, 0, 20, 20))
	c := obj(t, b, 1, rect(10, 10, 30, 30))

	// "2*2***2**": interiors overlap both ways with area dims — a custom
	// overlap pattern no named relation uses.
	mask := de9im.MustMask("2*2******")
	res := RelateMask(PC, a, c, mask)
	if !res.Holds || !res.Refined {
		t.Errorf("custom overlap mask: %+v, want refined true", res)
	}

	far := obj(t, b, 2, rect(80, 80, 90, 90))
	res = RelateMask(PC, a, far, mask)
	if res.Holds || res.Refined {
		t.Errorf("disjoint pair with overlap mask: %+v, want cheap false", res)
	}
	// The exact disjoint code must match without refinement.
	res = RelateMask(PC, a, far, de9im.MustMask("FF2FF1212"))
	if !res.Holds || res.Refined {
		t.Errorf("disjoint code on disjoint MBRs: %+v", res)
	}
}

func TestRelateMaskAgreesWithMatrix(t *testing.T) {
	b := testBuilder(t)
	pairsList := [][2]*Object{
		{obj(t, b, 0, rect(0, 0, 10, 10)), obj(t, b, 1, rect(5, 5, 15, 15))},
		{obj(t, b, 2, rect(0, 0, 10, 10)), obj(t, b, 3, rect(10, 0, 20, 10))},
		{obj(t, b, 4, rect(2, 2, 4, 4)), obj(t, b, 5, rect(0, 0, 10, 10))},
	}
	masks := []string{
		"T********", "FF*FF****", "T*F**F***", "****T****", "2FF1FF212",
	}
	for i, pr := range pairsList {
		matrix := Refine(pr[0], pr[1])
		for _, ms := range masks {
			k := de9im.MustMask(ms)
			want := k.Matches(matrix)
			got := RelateMask(PC, pr[0], pr[1], k)
			if got.Holds != want {
				t.Errorf("pair %d mask %s: got %v, want %v (matrix %s)",
					i, ms, got.Holds, want, matrix)
			}
		}
	}
}
