package linkset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/geom"
)

func buildObjects(t *testing.T) (left, right []*core.Object) {
	t.Helper()
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	b := april.NewBuilder(space, 9)
	rect := func(id int, x0, y0, x1, y1 float64) *core.Object {
		p := geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
		o, err := core.NewObject(id, p, b)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	// left: 0 big host, 1 isolated, 2 toucher
	left = []*core.Object{
		rect(0, 10, 10, 50, 50),
		rect(1, 80, 80, 90, 90),
		rect(2, 50, 10, 70, 30),
	}
	// right: 0 inside left0, 1 equals left1, 2 meets left2 via shared edge,
	// 3 overlaps left0
	right = []*core.Object{
		rect(0, 20, 20, 30, 30),
		rect(1, 80, 80, 90, 90),
		rect(2, 70, 10, 75, 30),
		rect(3, 40, 40, 60, 60),
	}
	return left, right
}

func TestDiscover(t *testing.T) {
	left, right := buildObjects(t)
	set := Discover(left, right, core.PC)
	if set.Candidates == 0 {
		t.Fatal("no candidates")
	}
	got := map[Link]bool{}
	for _, l := range set.Links {
		got[l] = true
	}
	want := []Link{
		{0, 0, de9im.Contains},
		{1, 1, de9im.Equals},
		{2, 2, de9im.Meets},
		{0, 3, de9im.Intersects},
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing link %+v (have %v)", w, set.Links)
		}
	}
	// No disjoint links.
	for _, l := range set.Links {
		if l.Relation == de9im.Disjoint {
			t.Errorf("disjoint link emitted: %+v", l)
		}
	}
	// Deterministic ordering.
	for i := 1; i < len(set.Links); i++ {
		a, b := set.Links[i-1], set.Links[i]
		if a.LeftID > b.LeftID || (a.LeftID == b.LeftID && a.RightID > b.RightID) {
			t.Error("links not ordered")
		}
	}
	// All methods discover the same links.
	for _, m := range core.Methods {
		other := Discover(left, right, m)
		if len(other.Links) != len(set.Links) {
			t.Fatalf("method %v found %d links, want %d", m, len(other.Links), len(set.Links))
		}
		for i := range other.Links {
			if other.Links[i] != set.Links[i] {
				t.Fatalf("method %v link %d = %+v, want %+v", m, i, other.Links[i], set.Links[i])
			}
		}
	}
}

func TestWriteNTriples(t *testing.T) {
	left, right := buildObjects(t)
	set := Discover(left, right, core.PC)
	var buf bytes.Buffer
	if err := set.WriteNTriples(&buf, "http://ex.org/l/", "http://ex.org/r/"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(set.Links) {
		t.Fatalf("%d lines for %d links", len(lines), len(set.Links))
	}
	if !strings.Contains(out, "<http://ex.org/l/1> <http://www.opengis.net/ont/geosparql#sfEquals> <http://ex.org/r/1> .") {
		t.Errorf("equals triple missing:\n%s", out)
	}
	if !strings.Contains(out, "sfTouches") {
		t.Error("touches triple missing")
	}
	for _, line := range lines {
		if !strings.HasSuffix(line, " .") {
			t.Errorf("malformed triple: %q", line)
		}
	}
}

func TestPredicate(t *testing.T) {
	if _, ok := Predicate(de9im.Disjoint); ok {
		t.Error("disjoint must have no predicate")
	}
	p, ok := Predicate(de9im.CoveredBy)
	if !ok || !strings.Contains(p, "sfWithin") {
		t.Errorf("covered_by predicate: %q", p)
	}
}

func TestHistogram(t *testing.T) {
	left, right := buildObjects(t)
	set := Discover(left, right, core.PC)
	h := set.Histogram()
	if h[de9im.Equals] != 1 || h[de9im.Meets] != 1 {
		t.Errorf("histogram wrong: %v", h)
	}
}

func TestExpand(t *testing.T) {
	left, right := buildObjects(t)
	set := Discover(left, right, core.PC)
	exp := Expanded(t, set)
	// The contains link implies covers and intersects.
	want := []Link{
		{0, 0, de9im.Covers},
		{0, 0, de9im.Intersects},
		{1, 1, de9im.CoveredBy},
		{1, 1, de9im.Covers},
		{1, 1, de9im.Intersects},
		{2, 2, de9im.Intersects},
	}
	got := map[Link]bool{}
	for _, l := range exp.Links {
		got[l] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("expanded set missing %+v", w)
		}
	}
	if len(exp.Links) <= len(set.Links) {
		t.Error("expansion added nothing")
	}
	// No duplicates.
	seen := map[Link]bool{}
	for _, l := range exp.Links {
		if seen[l] {
			t.Fatalf("duplicate link %+v", l)
		}
		seen[l] = true
	}
}

func Expanded(t *testing.T, s *Set) *Set {
	t.Helper()
	return s.Expand()
}
