package linkset

import (
	"math/rand"
	"testing"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/geom"
)

// progressiveWorkload builds hosts with nested children (links) plus
// scattered clutter whose MBRs overlap hosts marginally (non-links).
func progressiveWorkload(t *testing.T) (left, right []*core.Object) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 400, MaxY: 400}
	b := april.NewBuilder(space, 10)
	mk := func(id int, p *geom.Polygon) *core.Object {
		o, err := core.NewObject(id, p, b)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	for i := 0; i < 25; i++ {
		host := datagen.Blob(rng, geom.Point{X: 50 + rng.Float64()*300, Y: 50 + rng.Float64()*300}, 15+rng.Float64()*15, 24+rng.Intn(60))
		right = append(right, mk(i, host))
	}
	id := 0
	for i := 0; i < 50; i++ {
		host := right[rng.Intn(len(right))].Poly
		left = append(left, mk(id, datagen.InsideBlob(rng, host, 0.2+rng.Float64()*0.3, 8+rng.Intn(30), 1)))
		id++
	}
	for i := 0; i < 120; i++ {
		host := right[rng.Intn(len(right))].Poly
		left = append(left, mk(id, datagen.NearMissBlob(rng, host, 2+rng.Float64()*3, 8+rng.Intn(20), 2)))
		id++
	}
	return left, right
}

func TestProgressiveMatchesDiscover(t *testing.T) {
	left, right := progressiveWorkload(t)
	plain := Discover(left, right, core.PC)
	prog, curve := DiscoverProgressive(left, right, core.PC, 10)
	if prog.Candidates != plain.Candidates {
		t.Fatalf("candidates: %d vs %d", prog.Candidates, plain.Candidates)
	}
	if len(prog.Links) != len(plain.Links) {
		t.Fatalf("links: %d vs %d", len(prog.Links), len(plain.Links))
	}
	for i := range prog.Links {
		if prog.Links[i] != plain.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, prog.Links[i], plain.Links[i])
		}
	}
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	last := curve[len(curve)-1]
	if last.Processed != prog.Candidates || last.Links != len(prog.Links) {
		t.Fatalf("final curve point %+v", last)
	}
	// Curve is monotone.
	for i := 1; i < len(curve); i++ {
		if curve[i].Links < curve[i-1].Links || curve[i].Processed < curve[i-1].Processed {
			t.Fatal("curve not monotone")
		}
	}
}

// TestProgressiveFrontLoadsLinks: the overlap-ratio scheduler must find
// links faster than uniform processing — with half the verification
// budget it should exceed half the links by a clear margin.
func TestProgressiveFrontLoadsLinks(t *testing.T) {
	left, right := progressiveWorkload(t)
	_, curve := DiscoverProgressive(left, right, core.PC, 20)
	half := EarlyRecall(curve, 0.5)
	if half <= 0.6 {
		t.Errorf("early recall at 50%% budget = %.2f, want > 0.6", half)
	}
	full := EarlyRecall(curve, 1.0)
	if full != 1.0 {
		t.Errorf("full budget recall = %.2f", full)
	}
}

func TestEarlyRecallEdgeCases(t *testing.T) {
	if EarlyRecall(nil, 0.5) != 0 {
		t.Error("nil curve")
	}
	if EarlyRecall([]CurvePoint{{Processed: 10, Links: 0}}, 0.5) != 0 {
		t.Error("zero links")
	}
}

func TestDiscoverProgressiveEmpty(t *testing.T) {
	set, curve := DiscoverProgressive(nil, nil, core.PC, 5)
	if set.Candidates != 0 || len(set.Links) != 0 {
		t.Errorf("empty discover: %+v", set)
	}
	if len(curve) != 1 || curve[0] != (CurvePoint{}) {
		t.Errorf("empty curve: %v", curve)
	}
}

func TestPairScore(t *testing.T) {
	space := geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	b := april.NewBuilder(space, 8)
	mk := func(x0, y0, x1, y1 float64) *core.Object {
		p := geom.NewPolygon(geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
		o, err := core.NewObject(0, p, b)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	host := mk(0, 0, 50, 50)
	nested := mk(10, 10, 20, 20)
	corner := mk(49, 49, 60, 60)
	farNeighbor := mk(50.4, 0, 60, 50) // MBRs touch, rasters separable
	// Interval evidence dominates: the nested pair (certain interior
	// contact) outranks the corner overlap (conservative contact only),
	// which outranks the raster-separable neighbour.
	sNested, sCorner, sFar := pairScore(nested, host), pairScore(corner, host), pairScore(farNeighbor, host)
	if sNested <= sCorner {
		t.Errorf("nested (%v) must outrank corner overlap (%v)", sNested, sCorner)
	}
	if sCorner <= sFar {
		t.Errorf("corner overlap (%v) must outrank raster-separable neighbour (%v)", sCorner, sFar)
	}
	if s := pairScore(mk(90, 90, 95, 95), host); s != 0 {
		t.Errorf("fully disjoint score = %v", s)
	}
}
