package linkset

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/interval"
	"repro/internal/join"
)

// Progressive interlinking (Papadakis et al., WWW 2021 — reference [25]
// of the paper) examines candidate pairs in an order that maximizes the
// chance of early link discovery, so that a bounded verification budget
// yields as many links as possible. The paper's filters are orthogonal:
// here both combine — the scheduler orders pairs, the P+C filters make
// each verification cheap.

// CurvePoint is one sample of the recall curve: after Processed pair
// verifications, Links links had been found.
type CurvePoint struct {
	Processed int
	Links     int
}

// pairScore estimates how likely a candidate pair is to be related. The
// MBR overlap ratio alone (as in classic progressive interlinking)
// cannot separate nested pairs from near misses whose MBR also lies
// inside the host's, so the score leads with interval-list evidence the
// approximations give almost for free: pairs whose conservative list
// touches the other's progressive list certainly intersect and come
// first; pairs with disjoint conservative lists are certainly unrelated
// and come last.
func pairScore(a, b *core.Object) float64 {
	base := 0.0
	switch {
	case interval.Overlap(a.Approx.C, b.Approx.P) || interval.Overlap(a.Approx.P, b.Approx.C):
		base = 20
	case interval.Overlap(a.Approx.C, b.Approx.C):
		base = 10
	}
	inter := a.MBR.Intersection(b.MBR)
	if inter.IsEmpty() {
		return base
	}
	minArea := math.Min(a.MBR.Area(), b.MBR.Area())
	if minArea <= 0 {
		return base + 1
	}
	return base + inter.Area()/minArea
}

// DiscoverProgressive runs interlinking with the candidate pairs ordered
// by descending relatedness score, recording the link-recall curve at
// the given number of evenly spaced checkpoints (at least 1; the final
// point always covers all pairs). The returned set is identical to
// Discover's up to ordering of discovery.
func DiscoverProgressive(left, right []*core.Object, m core.Method, checkpoints int) (*Set, []CurvePoint) {
	type cand struct {
		l, r  int32
		score float64
	}
	lb := make([]join.Entry, len(left))
	for i, o := range left {
		lb[i] = join.Entry{Box: o.MBR, ID: int32(i)}
	}
	rb := make([]join.Entry, len(right))
	for i, o := range right {
		rb[i] = join.Entry{Box: o.MBR, ID: int32(i)}
	}
	var cands []cand
	join.BuildRTree(lb).Join(join.BuildRTree(rb), func(a, b join.Entry) {
		cands = append(cands, cand{l: a.ID, r: b.ID, score: pairScore(left[a.ID], right[b.ID])})
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].l != cands[j].l {
			return cands[i].l < cands[j].l
		}
		return cands[i].r < cands[j].r
	})

	if checkpoints < 1 {
		checkpoints = 1
	}
	set := &Set{Candidates: len(cands)}
	var curve []CurvePoint
	nextCheckpoint := func(k int) int {
		return (len(cands)*k + checkpoints - 1) / checkpoints
	}
	cp := 1
	for i, c := range cands {
		l, r := left[c.l], right[c.r]
		res := core.FindRelation(m, l, r)
		if res.Refined {
			set.Refined++
		}
		if res.Relation != de9im.Disjoint {
			set.Links = append(set.Links, Link{LeftID: l.ID, RightID: r.ID, Relation: res.Relation})
		}
		for cp <= checkpoints && i+1 >= nextCheckpoint(cp) {
			curve = append(curve, CurvePoint{Processed: i + 1, Links: len(set.Links)})
			cp++
		}
	}
	if len(cands) == 0 {
		curve = append(curve, CurvePoint{})
	}
	sort.Slice(set.Links, func(i, j int) bool {
		if set.Links[i].LeftID != set.Links[j].LeftID {
			return set.Links[i].LeftID < set.Links[j].LeftID
		}
		return set.Links[i].RightID < set.Links[j].RightID
	})
	return set, curve
}

// EarlyRecall summarizes a curve: the fraction of all links already found
// after the given fraction of pair verifications, interpolating linearly
// between checkpoints.
func EarlyRecall(curve []CurvePoint, budget float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	total := curve[len(curve)-1]
	if total.Links == 0 || total.Processed == 0 {
		return 0
	}
	limit := budget * float64(total.Processed)
	prev := CurvePoint{}
	for _, p := range curve {
		if float64(p.Processed) >= limit {
			span := float64(p.Processed - prev.Processed)
			frac := 1.0
			if span > 0 {
				frac = (limit - float64(prev.Processed)) / span
			}
			links := float64(prev.Links) + frac*float64(p.Links-prev.Links)
			return links / float64(total.Links)
		}
		prev = p
	}
	return 1
}
