// Package linkset implements geo-spatial interlinking on top of the
// topology-join core: it discovers the topological links between two
// object collections and serializes them as GeoSPARQL simple-feature
// triples, the output format of link-discovery frameworks such as RADON
// and Silk that the paper motivates and plans to integrate with.
package linkset

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/de9im"
	"repro/internal/join"
)

// Link is one discovered topological relation between two entities.
type Link struct {
	LeftID   int
	RightID  int
	Relation de9im.Relation
}

// Set is a collection of discovered links plus discovery statistics.
type Set struct {
	Links []Link
	// Candidates is the number of MBR-intersecting pairs examined.
	Candidates int
	// Refined is the number of pairs that needed DE-9IM computation.
	Refined int
}

// Discover runs the full interlinking pipeline between two collections:
// MBR join for candidates, then find-relation with method m on each pair.
// Disjoint pairs produce no link. Results are ordered by (left, right) id.
func Discover(left, right []*core.Object, m core.Method) *Set {
	lb := make([]join.Entry, len(left))
	for i, o := range left {
		lb[i] = join.Entry{Box: o.MBR, ID: int32(i)}
	}
	rb := make([]join.Entry, len(right))
	for i, o := range right {
		rb[i] = join.Entry{Box: o.MBR, ID: int32(i)}
	}
	set := &Set{}
	tl, tr := join.BuildRTree(lb), join.BuildRTree(rb)
	tl.Join(tr, func(a, b join.Entry) {
		set.Candidates++
		l, r := left[a.ID], right[b.ID]
		res := core.FindRelation(m, l, r)
		if res.Refined {
			set.Refined++
		}
		if res.Relation != de9im.Disjoint {
			set.Links = append(set.Links, Link{LeftID: l.ID, RightID: r.ID, Relation: res.Relation})
		}
	})
	sort.Slice(set.Links, func(i, j int) bool {
		if set.Links[i].LeftID != set.Links[j].LeftID {
			return set.Links[i].LeftID < set.Links[j].LeftID
		}
		return set.Links[i].RightID < set.Links[j].RightID
	})
	return set
}

// Histogram counts links per relation.
func (s *Set) Histogram() map[de9im.Relation]int {
	h := make(map[de9im.Relation]int)
	for _, l := range s.Links {
		h[l.Relation]++
	}
	return h
}

// GeoSPARQL simple-feature predicate IRIs for each relation. The simple
// features vocabulary folds covered-by into within and covers into
// contains; the generic intersects is used for proper overlap.
var geoPredicates = map[de9im.Relation]string{
	de9im.Equals:     "http://www.opengis.net/ont/geosparql#sfEquals",
	de9im.Inside:     "http://www.opengis.net/ont/geosparql#sfWithin",
	de9im.CoveredBy:  "http://www.opengis.net/ont/geosparql#sfWithin",
	de9im.Contains:   "http://www.opengis.net/ont/geosparql#sfContains",
	de9im.Covers:     "http://www.opengis.net/ont/geosparql#sfContains",
	de9im.Meets:      "http://www.opengis.net/ont/geosparql#sfTouches",
	de9im.Intersects: "http://www.opengis.net/ont/geosparql#sfIntersects",
}

// Predicate returns the GeoSPARQL predicate IRI of a relation, or false
// for disjoint (which yields no link).
func Predicate(rel de9im.Relation) (string, bool) {
	p, ok := geoPredicates[rel]
	return p, ok
}

// WriteNTriples serializes the links in N-Triples form. Entity IRIs are
// leftBase+ID and rightBase+ID.
func (s *Set) WriteNTriples(w io.Writer, leftBase, rightBase string) error {
	bw := bufio.NewWriter(w)
	for _, l := range s.Links {
		pred, ok := Predicate(l.Relation)
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(bw, "<%s%d> <%s> <%s%d> .\n",
			leftBase, l.LeftID, pred, rightBase, l.RightID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Expand returns the link set closed under the relation hierarchy: every
// link implies the links of its generalizations (inside additionally
// yields within-as-covered-by is already folded, and every non-disjoint
// pair yields sfIntersects), matching RADON's all-relations output mode.
func (s *Set) Expand() *Set {
	out := &Set{Candidates: s.Candidates, Refined: s.Refined}
	seen := make(map[Link]bool)
	add := func(l Link) {
		if !seen[l] {
			seen[l] = true
			out.Links = append(out.Links, l)
		}
	}
	for _, l := range s.Links {
		add(l)
		for _, rel := range []de9im.Relation{
			de9im.CoveredBy, de9im.Covers, de9im.Intersects,
		} {
			if rel != l.Relation && core.Implies(l.Relation, rel) {
				add(Link{LeftID: l.LeftID, RightID: l.RightID, Relation: rel})
			}
		}
	}
	sort.Slice(out.Links, func(i, j int) bool {
		a, b := out.Links[i], out.Links[j]
		if a.LeftID != b.LeftID {
			return a.LeftID < b.LeftID
		}
		if a.RightID != b.RightID {
			return a.RightID < b.RightID
		}
		return a.Relation < b.Relation
	})
	return out
}
