package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// loadReport parses a previously recorded BENCH_N.json artifact.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareReports prints the per-combo, per-pipeline deltas of cur
// against base and enforces two gates:
//
//   - Fingerprints: every combo's pair count and each pipeline's
//     mbr/if/refined verdict split must match exactly. The fingerprint
//     is a pure function of the workload, so a mismatch means the two
//     artifacts measured different work (or a correctness change slipped
//     in) and no timing comparison is meaningful.
//   - Regression threshold: with regressPct > 0, any pipeline whose
//     ns/pair exceeds the baseline by more than regressPct percent fails
//     the comparison. regressPct <= 0 disables the timing gate (the CI
//     smoke job runs fingerprint-only: absolute timings are not
//     comparable across machines).
//
// The returned error is non-nil if any gate fails.
func compareReports(cur, base *Report, regressPct float64, w io.Writer) error {
	fmt.Fprintf(w, "comparing %s (current) against %s (baseline)\n", cur.Bench, base.Bench)
	baseCombos := make(map[string]*ComboReport, len(base.Combos))
	for i := range base.Combos {
		baseCombos[base.Combos[i].Combo] = &base.Combos[i]
	}
	var failures []string
	for _, cc := range cur.Combos {
		bc, ok := baseCombos[cc.Combo]
		if !ok {
			failures = append(failures, fmt.Sprintf("combo %s missing from baseline", cc.Combo))
			continue
		}
		fmt.Fprintf(w, "%s (%d pairs)\n", cc.Combo, cc.Pairs)
		if cc.Pairs != bc.Pairs {
			failures = append(failures, fmt.Sprintf(
				"combo %s: pair count %d != baseline %d", cc.Combo, cc.Pairs, bc.Pairs))
			continue
		}
		basePipes := make(map[string]*PipelineResult, len(bc.Pipelines))
		for i := range bc.Pipelines {
			basePipes[bc.Pipelines[i].Method] = &bc.Pipelines[i]
		}
		for _, cp := range cc.Pipelines {
			bp, ok := basePipes[cp.Method]
			if !ok {
				failures = append(failures, fmt.Sprintf(
					"combo %s: pipeline %s missing from baseline", cc.Combo, cp.Method))
				continue
			}
			fmt.Fprintf(w, "  %-5s  ns/pair %10.1f -> %10.1f (%s)   refine %10.1f -> %10.1f (%s)   allocs %7.1f -> %6.1f\n",
				cp.Method,
				bp.NsPerPair, cp.NsPerPair, pct(bp.NsPerPair, cp.NsPerPair),
				bp.RefineNsPerPair, cp.RefineNsPerPair, pct(bp.RefineNsPerPair, cp.RefineNsPerPair),
				bp.AllocsPerPair, cp.AllocsPerPair)
			if cp.MBRSettled != bp.MBRSettled || cp.IFSettled != bp.IFSettled || cp.Refined != bp.Refined {
				failures = append(failures, fmt.Sprintf(
					"combo %s %s: verdict fingerprint %d/%d/%d != baseline %d/%d/%d",
					cc.Combo, cp.Method,
					cp.MBRSettled, cp.IFSettled, cp.Refined,
					bp.MBRSettled, bp.IFSettled, bp.Refined))
			}
			if regressPct > 0 && bp.NsPerPair > 0 &&
				cp.NsPerPair > bp.NsPerPair*(1+regressPct/100) {
				failures = append(failures, fmt.Sprintf(
					"combo %s %s: ns/pair %.1f regressed more than %.1f%% over baseline %.1f",
					cc.Combo, cp.Method, cp.NsPerPair, regressPct, bp.NsPerPair))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(w, "FAIL: %s\n", f)
		}
		return fmt.Errorf("%d comparison failure(s)", len(failures))
	}
	fmt.Fprintf(w, "fingerprints match (%d combos)\n", len(cur.Combos))
	return nil
}

// pct formats the relative change from base to cur.
func pct(base, cur float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-base)/base)
}
