// Command benchrun records one point of the repo's benchmark
// trajectory: a fixed-seed sweep of every find-relation pipeline over
// seeded synthetic workloads, reported as per-pair cost with the
// filter/refine split and allocation rate, and written as a BENCH_N.json
// artifact at the repo root. Each PR that claims a performance change
// appends a new BENCH_N.json produced by the same harness, so "faster"
// is always a diff between two recorded points rather than an assertion.
//
//	benchrun -out BENCH_7.json                    # record the default suite
//	benchrun -combos OLE:OPE -pairs 2000 -trials 3
//	benchrun -scale 0.05 -out -                   # quick run to stdout
//
// The workload is deterministic: a fixed seed produces the same
// datasets, the same candidate pairs (capped at -pairs per combo, so
// the denominator is stable across machines), and the same verdict
// splits. Timings are medians over -trials measured runs after -warmup
// discarded runs; allocations are Mallocs deltas around the timed sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/harness"
)

func main() {
	var (
		seed   = flag.Int64("seed", 2026, "generator seed")
		scale  = flag.Float64("scale", 0.2, "dataset cardinality multiplier")
		order  = flag.Uint("order", datagen.DefaultOrder, "global grid order (2^order cells per side)")
		combos = flag.String("combos", "OLE:OPE,OBE:OPE", "comma-separated dataset combos (L:R)")
		pairs  = flag.Int("pairs", 4000, "max candidate pairs swept per combo (0 = all)")
		warmup = flag.Int("warmup", 1, "discarded warmup sweeps per pipeline")
		trials = flag.Int("trials", 5, "measured sweeps per pipeline (median reported)")
		out     = flag.String("out", "BENCH_8.json", "output path (- for stdout)")
		label   = flag.String("label", "BENCH_8", "benchmark point label recorded in the artifact")
		compare = flag.String("compare", "", "baseline BENCH_N.json to diff against (prints per-combo deltas, verifies fingerprints)")
		regress = flag.Float64("regress", 0, "with -compare: fail if any pipeline's ns/pair regresses more than this percent (<= 0 gates on fingerprints only)")
	)
	flag.Parse()

	cfg := config{
		Seed: *seed, Scale: *scale, Order: *order,
		Pairs: *pairs, Warmup: *warmup, Trials: *trials, Label: *label,
	}
	var err error
	if cfg.Combos, err = parseCombos(*combos); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(2)
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrun: wrote %s (%d combos × %d pipelines)\n",
			*out, len(rep.Combos), core.NumMethods)
	}
	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		if err := compareReports(rep, base, *regress, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
	}
}

// config is one benchmark recording: the deterministic workload
// definition plus the measurement protocol.
type config struct {
	Label  string
	Seed   int64
	Scale  float64
	Order  uint
	Combos [][2]string
	Pairs  int // cap per combo; 0 = all candidates
	Warmup int
	Trials int
}

// Report is the artifact schema. Everything except the timing and
// allocation fields is a pure function of (seed, scale, order, combos,
// pairs) and must be byte-identical across runs and machines.
type Report struct {
	Bench   string       `json:"bench"`
	Version string       `json:"version"`
	Seed    int64        `json:"seed"`
	Scale   float64      `json:"scale"`
	Order   uint         `json:"grid_order"`
	Warmup  int          `json:"warmup"`
	Trials  int          `json:"trials"`
	GoArch  string       `json:"goarch"`
	Combos  []ComboReport `json:"combos"`
}

// ComboReport is one workload: a dataset combination's candidate pairs
// swept by all four pipelines.
type ComboReport struct {
	Combo     string           `json:"combo"`
	Pairs     int              `json:"pairs"`
	Pipelines []PipelineResult `json:"pipelines"`
}

// PipelineResult is the recorded cost of one pipeline on one workload.
// NsPerPair is the median trial's wall clock over the pair count;
// FilterNsPerPair/RefineNsPerPair split the same trial's per-stage sums
// (their total is at most NsPerPair; the gap is sweep loop overhead).
// The settled counts are the workload's deterministic fingerprint: if
// they drift between two BENCH points the workloads are not comparable.
type PipelineResult struct {
	Method          string  `json:"method"`
	NsPerPair       float64 `json:"ns_per_pair"`
	FilterNsPerPair float64 `json:"filter_ns_per_pair"`
	RefineNsPerPair float64 `json:"refine_ns_per_pair"`
	AllocsPerPair   float64 `json:"allocs_per_pair"`
	MBRSettled      int     `json:"mbr_settled"`
	IFSettled       int     `json:"if_settled"`
	Refined         int     `json:"refined"`
}

// trial is one measured sweep: the stats plus its allocation delta.
type trial struct {
	st      harness.MethodStats
	mallocs uint64
}

// run executes the recording: one preprocessed environment, then for
// each combo × pipeline, warmup sweeps followed by measured trials.
// Sweeps are serial (one goroutine) so ns/pair is CPU cost, not a
// parallel speedup that varies with the recording machine's core count.
func run(cfg config) (*Report, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("trials must be >= 1, got %d", cfg.Trials)
	}
	if len(cfg.Combos) == 0 {
		return nil, fmt.Errorf("no combos")
	}
	env, err := harness.NewEnv(cfg.Seed, cfg.Scale, cfg.Order)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Bench:   cfg.Label,
		Version: buildinfo.Version,
		Seed:    cfg.Seed,
		Scale:   cfg.Scale,
		Order:   cfg.Order,
		Warmup:  cfg.Warmup,
		Trials:  cfg.Trials,
		GoArch:  runtime.GOARCH,
	}
	for _, combo := range cfg.Combos {
		pairs, err := env.CandidatePairs(combo)
		if err != nil {
			return nil, err
		}
		if cfg.Pairs > 0 && len(pairs) > cfg.Pairs {
			pairs = pairs[:cfg.Pairs]
		}
		if len(pairs) == 0 {
			return nil, fmt.Errorf("combo %s produced no candidate pairs", datagen.ComboName(combo))
		}
		cr := ComboReport{Combo: datagen.ComboName(combo), Pairs: len(pairs)}
		for _, m := range core.Methods {
			cr.Pipelines = append(cr.Pipelines, measure(m, pairs, cfg.Warmup, cfg.Trials))
		}
		rep.Combos = append(rep.Combos, cr)
	}
	return rep, nil
}

// measure runs warmup+trials sweeps of one pipeline and reports the
// median trial (by elapsed time) so a GC pause or scheduler hiccup in
// one trial cannot skew the recorded point.
func measure(m core.Method, pairs []harness.Pair, warmup, trials int) PipelineResult {
	for i := 0; i < warmup; i++ {
		harness.RunFindRelation(m, pairs)
	}
	runs := make([]trial, trials)
	for i := range runs {
		runs[i] = measureOnce(m, pairs)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].st.Elapsed < runs[j].st.Elapsed })
	med := runs[len(runs)/2]
	n := float64(med.st.Pairs)
	return PipelineResult{
		Method:          m.String(),
		NsPerPair:       round1(float64(med.st.Elapsed.Nanoseconds()) / n),
		FilterNsPerPair: round1(float64(med.st.FilterTime.Nanoseconds()) / n),
		RefineNsPerPair: round1(float64(med.st.RefineTime.Nanoseconds()) / n),
		AllocsPerPair:   round1(float64(med.mallocs) / n),
		MBRSettled:      med.st.MBRSettled,
		IFSettled:       med.st.IFSettled,
		Refined:         med.st.Undetermined,
	}
}

// measureOnce times one serial sweep and its heap allocation count.
// The GC runs first so a collection triggered by a previous trial's
// garbage doesn't land inside this trial's wall clock.
func measureOnce(m core.Method, pairs []harness.Pair) trial {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	st := harness.RunFindRelation(m, pairs)
	runtime.ReadMemStats(&after)
	return trial{st: st, mallocs: after.Mallocs - before.Mallocs}
}

// parseCombos parses "OLE:OPE,OBE:OPE" into dataset combinations.
func parseCombos(s string) ([][2]string, error) {
	var out [][2]string
	for _, c := range strings.Split(s, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		l, r, ok := strings.Cut(c, ":")
		if !ok {
			return nil, fmt.Errorf("combo %q: want L:R (e.g. OLE:OPE)", c)
		}
		out = append(out, [2]string{strings.TrimSpace(l), strings.TrimSpace(r)})
	}
	return out, nil
}

// round1 keeps one decimal so artifact diffs stay readable.
func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}
