package main

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

func smallCfg() config {
	return config{
		Label: "BENCH_TEST", Seed: 7, Scale: 0.03, Order: 9,
		Combos: [][2]string{{"OLE", "OPE"}},
		Pairs:  200, Warmup: 0, Trials: 1,
	}
}

// TestRunReportShape: one small recording covers all four pipelines
// with coherent per-pair costs and verdict splits.
func TestRunReportShape(t *testing.T) {
	rep, err := run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Combos) != 1 {
		t.Fatalf("combos = %d, want 1", len(rep.Combos))
	}
	cr := rep.Combos[0]
	if cr.Combo != "OLE-OPE" || cr.Pairs == 0 || cr.Pairs > 200 {
		t.Fatalf("bad combo report: %+v", cr)
	}
	if len(cr.Pipelines) != core.NumMethods {
		t.Fatalf("pipelines = %d, want %d", len(cr.Pipelines), core.NumMethods)
	}
	for _, pr := range cr.Pipelines {
		if pr.NsPerPair <= 0 {
			t.Fatalf("%s: ns/pair = %v, want > 0", pr.Method, pr.NsPerPair)
		}
		if pr.FilterNsPerPair <= 0 {
			t.Fatalf("%s: filter ns/pair = %v, want > 0", pr.Method, pr.FilterNsPerPair)
		}
		// Stage sums are measured inside the sweep loop, so they cannot
		// exceed the wall clock per pair (modulo rounding).
		if pr.FilterNsPerPair+pr.RefineNsPerPair > pr.NsPerPair+1 {
			t.Fatalf("%s: stage split %v+%v exceeds total %v",
				pr.Method, pr.FilterNsPerPair, pr.RefineNsPerPair, pr.NsPerPair)
		}
		if got := pr.MBRSettled + pr.IFSettled + pr.Refined; got != cr.Pairs {
			t.Fatalf("%s: verdicts sum to %d, want %d pairs", pr.Method, got, cr.Pairs)
		}
		if pr.AllocsPerPair < 0 {
			t.Fatalf("%s: negative allocs/pair %v", pr.Method, pr.AllocsPerPair)
		}
	}
}

// TestRunDeterministicWorkload: the non-timing fields — the workload
// fingerprint BENCH points are compared by — are identical across runs.
func TestRunDeterministicWorkload(t *testing.T) {
	a, err := run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Combos[0].Pairs != b.Combos[0].Pairs {
		t.Fatalf("pair counts differ: %d vs %d", a.Combos[0].Pairs, b.Combos[0].Pairs)
	}
	for i := range a.Combos[0].Pipelines {
		pa, pb := a.Combos[0].Pipelines[i], b.Combos[0].Pipelines[i]
		if pa.Method != pb.Method || pa.MBRSettled != pb.MBRSettled ||
			pa.IFSettled != pb.IFSettled || pa.Refined != pb.Refined {
			t.Fatalf("workload fingerprint drifted:\n%+v\n%+v", pa, pb)
		}
	}
}

// TestReportRoundTrips: the artifact survives a JSON round trip.
func TestReportRoundTrips(t *testing.T) {
	rep, err := run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Bench != "BENCH_TEST" || len(back.Combos) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestParseCombos: accepted and rejected combo specs.
func TestParseCombos(t *testing.T) {
	got, err := parseCombos("OLE:OPE, OBE:OPE,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]string{"OLE", "OPE"} || got[1] != [2]string{"OBE", "OPE"} {
		t.Fatalf("parseCombos = %v", got)
	}
	if _, err := parseCombos("OLE-OPE"); err == nil {
		t.Fatal("want error for missing colon")
	}
}

// TestRunRejectsBadConfig: invalid protocols fail loudly, not with a
// zero-trial artifact.
func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallCfg()
	cfg.Trials = 0
	if _, err := run(cfg); err == nil {
		t.Fatal("want error for trials=0")
	}
	cfg = smallCfg()
	cfg.Combos = nil
	if _, err := run(cfg); err == nil {
		t.Fatal("want error for no combos")
	}
	cfg = smallCfg()
	cfg.Combos = [][2]string{{"OLE", "NOPE"}}
	if _, err := run(cfg); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}
