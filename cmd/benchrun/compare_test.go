package main

import (
	"strings"
	"testing"
)

func twoPointReports() (cur, base *Report) {
	mk := func(label string, ns, refine, allocs float64) *Report {
		return &Report{
			Bench: label,
			Combos: []ComboReport{{
				Combo: "OLE-OPE", Pairs: 284,
				Pipelines: []PipelineResult{{
					Method: "ST2", NsPerPair: ns, RefineNsPerPair: refine,
					AllocsPerPair: allocs, MBRSettled: 10, IFSettled: 0, Refined: 274,
				}},
			}},
		}
	}
	return mk("BENCH_8", 100000, 99000, 3), mk("BENCH_7", 200000, 198000, 214)
}

func TestCompareMatchingFingerprints(t *testing.T) {
	cur, base := twoPointReports()
	var buf strings.Builder
	if err := compareReports(cur, base, 0, &buf); err != nil {
		t.Fatalf("compare failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"OLE-OPE (284 pairs)", "ST2", "-50.0%", "fingerprints match"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareFingerprintMismatch(t *testing.T) {
	cur, base := twoPointReports()
	cur.Combos[0].Pipelines[0].Refined = 273 // one verdict drifted
	cur.Combos[0].Pipelines[0].IFSettled = 1
	var buf strings.Builder
	if err := compareReports(cur, base, 0, &buf); err == nil {
		t.Fatalf("verdict drift not detected:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "verdict fingerprint") {
		t.Errorf("failure not attributed to fingerprint:\n%s", buf.String())
	}
}

func TestComparePairCountMismatch(t *testing.T) {
	cur, base := twoPointReports()
	cur.Combos[0].Pairs = 300
	var buf strings.Builder
	if err := compareReports(cur, base, 0, &buf); err == nil {
		t.Fatal("pair count drift not detected")
	}
}

func TestCompareRegressionThreshold(t *testing.T) {
	cur, base := twoPointReports()
	cur.Combos[0].Pipelines[0].NsPerPair = base.Combos[0].Pipelines[0].NsPerPair * 1.5
	var buf strings.Builder
	// 50% slower: passes a 60% budget, fails a 10% budget, and passes
	// with the timing gate disabled.
	if err := compareReports(cur, base, 60, &buf); err != nil {
		t.Fatalf("within budget but failed: %v", err)
	}
	if err := compareReports(cur, base, 10, &buf); err == nil {
		t.Fatal("regression past threshold not detected")
	}
	if err := compareReports(cur, base, 0, &buf); err != nil {
		t.Fatalf("timing gate disabled but failed: %v", err)
	}
}

func TestCompareMissingBaselineCombo(t *testing.T) {
	cur, base := twoPointReports()
	base.Combos[0].Combo = "OBE-OPE"
	var buf strings.Builder
	if err := compareReports(cur, base, 0, &buf); err == nil {
		t.Fatal("missing baseline combo not detected")
	}
}
