// Command interlink discovers the topological links between two
// preprocessed datasets and writes them as GeoSPARQL N-Triples — the
// geo-spatial interlinking application that motivates the paper.
//
//	interlink -left data/OLE.stj -right data/OPE.stj -out links.nt
//	interlink ... -expand            # also emit implied generalizations
//	interlink ... -method APRIL      # compare pipelines
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/de9im"
	"repro/internal/linkset"
)

func main() {
	var (
		left   = flag.String("left", "", "left dataset file")
		right  = flag.String("right", "", "right dataset file")
		out    = flag.String("out", "", "output N-Triples file (default: stdout)")
		method = flag.String("method", "P+C", "pipeline: ST2|OP2|APRIL|P+C")
		expand = flag.Bool("expand", false, "also emit implied generalizations")
		lbase  = flag.String("lbase", "http://example.org/left/", "left entity IRI base")
		rbase  = flag.String("rbase", "http://example.org/right/", "right entity IRI base")
	)
	flag.Parse()
	if *left == "" || *right == "" {
		fmt.Fprintln(os.Stderr, "interlink: -left and -right are required")
		os.Exit(2)
	}
	if err := run(*left, *right, *out, *method, *lbase, *rbase, *expand); err != nil {
		fmt.Fprintln(os.Stderr, "interlink:", err)
		os.Exit(1)
	}
}

func run(leftPath, rightPath, outPath, methodName, lbase, rbase string, expand bool) error {
	var m core.Method
	found := false
	for _, cand := range core.Methods {
		if cand.String() == methodName {
			m, found = cand, true
		}
	}
	if !found {
		return fmt.Errorf("unknown method %q", methodName)
	}
	load := func(path string) (*dataset.Dataset, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Read(f)
	}
	ld, err := load(leftPath)
	if err != nil {
		return err
	}
	rd, err := load(rightPath)
	if err != nil {
		return err
	}

	start := time.Now()
	set := linkset.Discover(ld.Objects, rd.Objects, m)
	elapsed := time.Since(start)
	if expand {
		set = set.Expand()
	}
	fmt.Fprintf(os.Stderr, "%s x %s: %d candidates, %d links, %d refined (%.1f%%), %v\n",
		ld.Name, rd.Name, set.Candidates, len(set.Links), set.Refined,
		100*float64(set.Refined)/float64(maxInt(1, set.Candidates)), elapsed)
	for rel := de9im.Relation(0); int(rel) < de9im.NumRelations; rel++ {
		if n := set.Histogram()[rel]; n > 0 {
			fmt.Fprintf(os.Stderr, "  %-11v %d\n", rel, n)
		}
	}

	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return set.WriteNTriples(w, lbase, rbase)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
