package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/april"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func writeDatasets(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	suite := datagen.NewSuite(5, 0.03)
	b := april.NewBuilder(suite.Space, datagen.DefaultOrder)
	var paths []string
	for _, name := range []string{"OLE", "OPE"} {
		ds, err := dataset.Precompute(name, datagen.EntityTypes[name], suite.Sets[name], b)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name+".stj")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}
	return paths[0], paths[1]
}

func TestRunWritesTriples(t *testing.T) {
	left, right := writeDatasets(t)
	out := filepath.Join(t.TempDir(), "links.nt")
	if err := run(left, right, out, "P+C", "http://l/", "http://r/", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("no triples written")
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "<http://l/") || !strings.HasSuffix(l, " .") {
			t.Fatalf("malformed triple %q", l)
		}
	}
	// Expanded output is a superset.
	out2 := filepath.Join(t.TempDir(), "links2.nt")
	if err := run(left, right, out2, "P+C", "http://l/", "http://r/", true); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if len(data2) <= len(data) {
		t.Error("expanded output should be larger")
	}
}

func TestRunErrors(t *testing.T) {
	left, right := writeDatasets(t)
	if err := run(left, right, "", "NOPE", "a", "b", false); err == nil {
		t.Error("unknown method should fail")
	}
	if err := run("missing", right, "", "P+C", "a", "b", false); err == nil {
		t.Error("missing dataset should fail")
	}
}
