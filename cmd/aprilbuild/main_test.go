package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/snapshot"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "shapes.wkt")
	content := `# two shapes
POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))

POLYGON ((20 20, 30 20, 25 28, 20 20))
`
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "shapes.stj")
	if err := run(in, out, "shapes", 10, "", ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Name != "shapes" {
		t.Fatalf("dataset: %q with %d objects", ds.Name, ds.Len())
	}
	if len(ds.Objects[0].Approx.C) == 0 {
		t.Error("approximation missing")
	}
}

func TestRunWithExplicitSpace(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "a.wkt")
	if err := os.WriteFile(in, []byte("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "a.stj")
	if err := run(in, out, "", 8, "0,0,100,100", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, "", 8, "0,0,100", ""); err == nil {
		t.Error("malformed space should fail")
	}
	if err := run(in, out, "", 8, "0,0,x,100", ""); err == nil {
		t.Error("non-numeric space should fail")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "missing.wkt"), filepath.Join(dir, "o.stj"), "", 10, "", ""); err == nil {
		t.Error("missing input should fail")
	}
	empty := filepath.Join(dir, "empty.wkt")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, filepath.Join(dir, "o.stj"), "", 10, "", ""); err == nil {
		t.Error("empty input should fail")
	}
	bad := filepath.Join(dir, "bad.wkt")
	if err := os.WriteFile(bad, []byte("POLYGON ((0 0, 1 1))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, filepath.Join(dir, "o.stj"), "", 10, "", ""); err == nil {
		t.Error("malformed WKT should fail")
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "shapes.wkt")
	if err := os.WriteFile(in,
		[]byte("POLYGON ((0 0, 10 0, 10 10, 0 10))\nPOLYGON ((20 20, 30 20, 30 30, 20 30))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "shapes.stj")
	snapPath := filepath.Join(dir, "shapes.snap")
	if err := run(in, out, "shapes", 10, "", snapPath); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Read(snapPath)
	if err != nil {
		t.Fatalf("snapshot written by aprilbuild unreadable: %v", err)
	}
	if snap.Name != "shapes" || len(snap.Dataset.Objects) != 2 || snap.Order != 10 {
		t.Fatalf("snapshot = %q, %d objects, order %d", snap.Name, len(snap.Dataset.Objects), snap.Order)
	}
}
