// Command aprilbuild is the preprocessing step of the pipeline: it reads
// polygons from a WKT file (one POLYGON per line), computes their APRIL
// approximations over a global grid, and writes the library's binary
// dataset format ready for joining with topojoin.
//
//	aprilbuild -in lakes.wkt -out lakes.stj -order 16
//	aprilbuild -in lakes.wkt -out lakes.stj -snapshot lakes.snap
//
// The grid's data space defaults to the MBR of the input, expanded by
// -space if several datasets must share one grid (they must, to be
// joinable): pass "minX,minY,maxX,maxY". With -snapshot, the
// preprocessed dataset is additionally written as a checksummed server
// snapshot that topojoind -snapshots loads directly on start, skipping
// rasterization entirely.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/april"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/snapshot"
	"repro/internal/wkt"
)

func main() {
	var (
		in    = flag.String("in", "", "input WKT file (one POLYGON per line)")
		out   = flag.String("out", "", "output dataset file")
		name  = flag.String("name", "", "dataset name (default: input basename)")
		order = flag.Uint("order", 16, "global grid order")
		space = flag.String("space", "", "data space minX,minY,maxX,maxY (default: input MBR)")
		snap  = flag.String("snapshot", "", "also write a checksummed server snapshot to this path (topojoind -snapshots loads it)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "aprilbuild: -in and -out are required")
		os.Exit(2)
	}
	if err := run(*in, *out, *name, *order, *space, *snap); err != nil {
		fmt.Fprintln(os.Stderr, "aprilbuild:", err)
		os.Exit(1)
	}
}

func run(in, out, name string, order uint, spaceSpec, snapPath string) error {
	polys, err := readWKT(in)
	if err != nil {
		return err
	}
	if len(polys) == 0 {
		return fmt.Errorf("no polygons in %s", in)
	}
	space := geom.EmptyMBR()
	if spaceSpec != "" {
		if space, err = parseSpace(spaceSpec); err != nil {
			return err
		}
	} else {
		for _, p := range polys {
			space = space.Expand(p.Bounds())
		}
	}
	if name == "" {
		name = strings.TrimSuffix(in, ".wkt")
	}
	builder := april.NewBuilder(space, order)
	ds, err := dataset.Precompute(name, name, polys, builder)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := ds.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if snapPath != "" {
		if err := snapshot.Write(snapPath, ds, space, order); err != nil {
			return err
		}
		fmt.Printf("%s: snapshot -> %s\n", name, snapPath)
	}
	s := ds.Sizes()
	fmt.Printf("%s: %d polygons, approximations %.1f KB (polygons %.1f KB) -> %s\n",
		name, ds.Len(), float64(s.Approx)/1024, float64(s.Polygons)/1024, out)
	return nil
}

func readWKT(path string) ([]*geom.Polygon, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var polys []*geom.Polygon
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := wkt.ParsePolygon(text)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		polys = append(polys, p)
	}
	return polys, sc.Err()
}

func parseSpace(s string) (geom.MBR, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.MBR{}, fmt.Errorf("space must be minX,minY,maxX,maxY")
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.MBR{}, fmt.Errorf("space component %d: %w", i, err)
		}
		v[i] = f
	}
	return geom.MBR{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}
