// Command topojoinrouter is the scatter-gather front-end of a sharded
// topojoind fleet: it partitions the data space into contiguous Hilbert
// key ranges (one per shard), fans /v1/relate and /v1/join out to the
// shards a query can touch, and merges the per-shard answers into
// responses that match a single full server exactly — shards evaluate
// only the candidate pairs they own under the reference-point rule, so
// merged counters and result multisets need no router-side dedup.
//
// Each -shard flag names one shard's replicas (comma-separated base
// URLs, tried with failover and per-host circuit breaking); shards are
// numbered in flag order. The fleet's key ranges come from the same
// plan the router computes, printed with -print-plan:
//
//	topojoinrouter -print-plan 3                 # shard key ranges
//	topojoind -gen OLE,OPE -shard-id 0 -keyrange 0:1366 &
//	topojoind -gen OLE,OPE -shard-id 1 -keyrange 1366:2731 &
//	topojoind -gen OLE,OPE -shard-id 2 -keyrange 2731:4096 &
//	topojoinrouter -shard http://localhost:8081 \
//	               -shard http://localhost:8082 \
//	               -shard http://localhost:8083
//
// A query touching a shard whose replicas are all down degrades: the
// response is flagged partial with the missing shard indexes, never an
// error. /v1/healthz aggregates per-shard replica health; /v1/metricz
// serves the router metric families (scatter fanout, per-shard request
// outcomes, partial responses).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/shard/router"
	"repro/internal/trace"
)

func main() {
	var shards [][]string
	var (
		addr        = flag.String("addr", "localhost:8090", "listen address")
		routeOrder  = flag.Uint("route-order", shard.DefaultRouteOrder, "Hilbert order of the routing grid (must match the shards)")
		space       = flag.String("space", "", "data space minX,minY,maxX,maxY (default: synthetic suite space; must match the shards)")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", time.Minute, "ceiling on client-requested deadlines")
		grace       = flag.Duration("grace", 10*time.Second, "graceful shutdown drain period")
		printPlan   = flag.Int("print-plan", 0, "print the key ranges of an N-shard plan and exit")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests recording full span traces (0 disables, 1 traces all)")
		traceSlow   = flag.Duration("trace-slow", 0, "keep any request's trace at or above this duration, sampled or not (0 disables)")
	)
	flag.Func("shard", "one shard's replica base URLs, comma-separated (repeat per shard, in shard-index order)", func(v string) error {
		var replicas []string
		for _, u := range strings.Split(v, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicas = append(replicas, strings.TrimRight(u, "/"))
			}
		}
		if len(replicas) == 0 {
			return fmt.Errorf("empty replica list")
		}
		shards = append(shards, replicas)
		return nil
	})
	flag.Parse()

	sp := datagen.Space()
	if *space != "" {
		var err error
		if sp, err = parseSpace(*space); err != nil {
			fmt.Fprintln(os.Stderr, "topojoinrouter:", err)
			os.Exit(2)
		}
	}
	if *printPlan > 0 {
		plan, err := shard.NewPlan(sp, *routeOrder, *printPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topojoinrouter:", err)
			os.Exit(2)
		}
		for i, rng := range plan.Ranges() {
			fmt.Printf("shard %d: -shard-id %d -keyrange %s\n", i, i, rng)
		}
		return
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "topojoinrouter: at least one -shard is required")
		os.Exit(2)
	}
	var tracer *trace.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = trace.New(trace.Config{Sample: *traceSample, SlowThreshold: *traceSlow})
	}
	if err := run(*addr, sp, *routeOrder, shards, router.Config{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Tracer:         tracer,
	}, *grace, nil); err != nil {
		fmt.Fprintln(os.Stderr, "topojoinrouter:", err)
		os.Exit(1)
	}
}

func parseSpace(s string) (geom.MBR, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.MBR{}, fmt.Errorf("space: want minX,minY,maxX,maxY, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.MBR{}, fmt.Errorf("space: %w", err)
		}
		v[i] = f
	}
	return geom.MBR{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// run serves until SIGINT/SIGTERM, then drains within grace. ready,
// when non-nil, receives the bound address once the listener is up
// (tests).
func run(addr string, space geom.MBR, routeOrder uint, shards [][]string, cfg router.Config, grace time.Duration, ready chan<- string) error {
	plan, err := shard.NewPlan(space, routeOrder, len(shards))
	if err != nil {
		return err
	}
	cfg.Plan = plan
	cfg.Shards = shards
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(cfg.Metrics)
	}
	cfg.Logf = logf
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	for i, rng := range plan.Ranges() {
		fmt.Fprintf(os.Stderr, "topojoinrouter: shard %d keyrange %s -> %s\n",
			i, rng, strings.Join(shards[i], ", "))
	}
	fmt.Fprintf(os.Stderr, "topojoinrouter: routing %d shards on http://%s (grace %v)\n",
		len(shards), ln.Addr(), grace)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "topojoinrouter: draining...")

	gctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	drainErr := rt.Shutdown(gctx)
	if err := httpSrv.Shutdown(gctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("shutdown: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "topojoinrouter: drained cleanly")
	return nil
}
