// Multi-process end-to-end test of the sharded serving tier: real
// topojoind shard processes behind a real topojoinrouter process,
// checked against a single full topojoind, then subjected to replica
// and shard kills. This is the closest thing to production the test
// suite has — everything crosses process boundaries over TCP.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/shard"
)

// buildBinaries compiles topojoind and topojoinrouter into dir.
func buildBinaries(t *testing.T, dir string) (daemon, router string) {
	t.Helper()
	daemon = filepath.Join(dir, "topojoind")
	router = filepath.Join(dir, "topojoinrouter")
	for bin, pkg := range map[string]string{daemon: "repro/cmd/topojoind", router: "repro/cmd/topojoinrouter"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return daemon, router
}

// startProc launches bin and scans its stderr for the "on http://ADDR"
// readiness line; the process is killed at test cleanup.
func startProc(t *testing.T, bin string, args ...string) (addr string, cmd *exec.Cmd) {
	t.Helper()
	cmd = exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(bin), err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "on http://"); i >= 0 {
				a := line[i+len("on http://"):]
				if j := strings.IndexByte(a, ' '); j >= 0 {
					a = a[:j]
				}
				select {
				case addrc <- a:
				default:
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr = <-addrc:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s did not become ready", filepath.Base(bin))
	}
	return addr, cmd
}

func ctxShort(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestE2EShardedFleet spins up a 3-shard fleet (shard 0 with two
// replicas) plus a single-node reference, and asserts:
//
//  1. the router's join matches the single node exactly;
//  2. killing one replica of shard 0 still yields complete answers;
//  3. killing the unreplicated shard 2 yields a flagged partial
//     response and a degraded /v1/healthz — never an error or hang.
func TestE2EShardedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e (use -short to skip)")
	}
	dir := t.TempDir()
	daemonBin, routerBin := buildBinaries(t, dir)

	const nShards = 3
	plan, err := shard.NewPlan(datagen.Space(), shard.DefaultRouteOrder, nShards)
	if err != nil {
		t.Fatal(err)
	}
	genArgs := []string{"-gen", "OLE,OPE", "-scale", "0.05", "-addr", "localhost:0"}

	// Shard replica layout: shard 0 ×2, shards 1 and 2 ×1.
	var shardFlags []string
	var shardURLs [][]string
	var replicaCmds [][]*exec.Cmd
	for i := 0; i < nShards; i++ {
		args := append([]string{}, genArgs...)
		args = append(args, "-shard-id", fmt.Sprint(i), "-keyrange", plan.Ranges()[i].String())
		n := 1
		if i == 0 {
			n = 2
		}
		var urls []string
		var cmds []*exec.Cmd
		for r := 0; r < n; r++ {
			addr, cmd := startProc(t, daemonBin, args...)
			urls = append(urls, "http://"+addr)
			cmds = append(cmds, cmd)
		}
		shardFlags = append(shardFlags, "-shard", strings.Join(urls, ","))
		shardURLs = append(shardURLs, urls)
		replicaCmds = append(replicaCmds, cmds)
	}
	singleAddr, _ := startProc(t, daemonBin, genArgs...)
	routerArgs := append([]string{"-addr", "localhost:0"}, shardFlags...)
	routerAddr, _ := startProc(t, routerBin, routerArgs...)

	single := server.NewResilientClient("http://" + singleAddr)
	routed := server.NewResilientClient("http://" + routerAddr)
	req := server.JoinRequest{Left: "OLE", Right: "OPE", Predicate: "intersects", Limit: 100000}

	want, err := single.Join(ctxShort(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Candidates == 0 || len(want.Pairs) == 0 {
		t.Fatalf("degenerate reference answer: %+v", want)
	}

	check := func(name string, wantPartial bool) *server.JoinResponse {
		t.Helper()
		got, err := routed.Join(ctxShort(t), req)
		if err != nil {
			t.Fatalf("%s: routed join: %v", name, err)
		}
		if got.Partial != wantPartial {
			t.Fatalf("%s: partial=%v missing=%v, want partial=%v",
				name, got.Partial, got.MissingShards, wantPartial)
		}
		if !wantPartial {
			if got.Candidates != want.Candidates || got.Holds != want.Holds {
				t.Fatalf("%s: got candidates=%d holds=%d, want %d/%d",
					name, got.Candidates, got.Holds, want.Candidates, want.Holds)
			}
			if !samePairSet(got.Pairs, want.Pairs) {
				t.Fatalf("%s: routed pair set differs from single node", name)
			}
		}
		return got
	}

	// Healthy fleet: exact match.
	check("healthy", false)

	// Kill one replica of shard 0: failover keeps answers complete.
	replicaCmds[0][0].Process.Kill()
	replicaCmds[0][0].Wait()
	check("replica-killed", false)
	h, err := routed.Health(ctxShort(t))
	if err != nil {
		t.Fatalf("healthz after replica kill: %v", err)
	}
	if h.Status != "degraded" || len(h.Shards) != nShards || h.Shards[0].Alive != 1 {
		t.Fatalf("healthz after replica kill: status=%q shards=%+v", h.Status, h.Shards)
	}

	// Kill the unreplicated shard 2: flagged partial, never an error.
	// Record its owned share first — counters sum exactly across
	// shards, so the partial answer must be the full one minus it.
	share, err := server.NewResilientClient(shardURLs[2][0]).Join(ctxShort(t), req)
	if err != nil {
		t.Fatalf("direct join on shard 2: %v", err)
	}
	replicaCmds[2][0].Process.Kill()
	replicaCmds[2][0].Wait()
	got := check("shard-killed", true)
	if len(got.MissingShards) != 1 || got.MissingShards[0] != 2 {
		t.Fatalf("missing shards = %v, want [2]", got.MissingShards)
	}
	if got.Candidates != want.Candidates-share.Candidates || got.Holds != want.Holds-share.Holds {
		t.Fatalf("partial answer candidates=%d holds=%d, want full (%d/%d) minus shard 2's share (%d/%d)",
			got.Candidates, got.Holds, want.Candidates, want.Holds, share.Candidates, share.Holds)
	}
	h, err = routed.Health(ctxShort(t))
	if err != nil {
		t.Fatalf("healthz after shard kill: %v", err)
	}
	if h.Status != "degraded" || h.Shards[2].Status != "dead" {
		t.Fatalf("healthz after shard kill: status=%q shard2=%+v", h.Status, h.Shards[2])
	}
}

func samePairSet(a, b []server.JoinPair) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p server.JoinPair) string {
		return fmt.Sprintf("%d|%d|%s", p.LeftID, p.RightID, p.Relation)
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = key(a[i]), key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
