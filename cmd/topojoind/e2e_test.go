// Multi-process crash drill for the dynamic-dataset path: a real
// topojoind process takes ingest over HTTP, compacts an epoch to disk,
// gets SIGKILLed mid-compaction (fault-delayed fsync, torn .tmp on
// disk), and every restart must warm-start from the last *complete*
// epoch — never the torn write, never a cold rebuild that forgets
// compacted mutations.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/server"
)

func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "topojoind")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/topojoind")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches bin with extra env and scans stderr for the
// readiness line. The caller kills it; cleanup is a safety net.
func startDaemon(t *testing.T, bin string, env []string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "on http://"); i >= 0 {
				a := line[i+len("on http://"):]
				if j := strings.IndexByte(a, ' '); j >= 0 {
					a = a[:j]
				}
				select {
				case addrc <- a:
				default:
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr := <-addrc:
		return addr, cmd
	case <-time.After(120 * time.Second):
		t.Fatal("topojoind did not become ready")
		return "", nil
	}
}

func TestE2EIngestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	snapDir := filepath.Join(dir, "snapshots")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Geometry inside the synthetic suite's data space.
	sp := datagen.Space()
	w := (sp.MaxX - sp.MinX) / 100
	rect := func(fx, fy float64) string {
		x := sp.MinX + fx*(sp.MaxX-sp.MinX)
		y := sp.MinY + fy*(sp.MaxY-sp.MinY)
		return fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g))",
			x, y, x+w, y, x+w, y+w, x, y+w)
	}
	probe := server.RelateRequest{Dataset: "OLE", WKT: rect(0.4, 0.4), Limit: 100000}
	args := []string{"-addr", "127.0.0.1:0", "-gen", "OLE", "-scale", "0.02",
		"-seed", "7", "-snapshots", snapDir, "-compact-threshold", "0"}
	matchIDs := func(c *server.Client) []int {
		t.Helper()
		resp, err := c.Relate(ctx, probe)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(resp.Matches))
		for i, m := range resp.Matches {
			ids[i] = m.ID
		}
		sort.Ints(ids)
		return ids
	}
	epochOf := func(c *server.Client) uint64 {
		t.Helper()
		infos, err := c.Datasets(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range infos {
			if in.Name == "OLE" {
				return in.Epoch
			}
		}
		t.Fatal("dataset OLE missing")
		return 0
	}

	// Run 1: ingest two objects into the probe area, delete one base
	// object the probe also covers (if any), compact to epoch 1.
	addr, proc := startDaemon(t, bin, nil, args...)
	c := server.NewClient("http://" + addr)
	insA, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.401, 0.401)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.405, 0.405)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "OLE", insA.ID); err != nil {
		t.Fatal(err)
	}
	comp, err := c.Compact(ctx, "OLE")
	if err != nil {
		t.Fatal(err)
	}
	if comp.Epoch != 1 {
		t.Fatalf("compacted epoch = %d, want 1", comp.Epoch)
	}
	baseline := matchIDs(c)
	proc.Process.Kill() // hard kill: durability must not depend on drain
	proc.Wait()

	// Run 2: warm start from epoch 1, then crash mid-compaction. The
	// fault delays the snapshot fsync so the .tmp is on disk, torn,
	// when SIGKILL lands.
	addr, proc = startDaemon(t, bin,
		[]string{"STJ_FAULTS=snapshot.write.sync=delay:60s"}, args...)
	c = server.NewClient("http://" + addr)
	if got := epochOf(c); got != 1 {
		t.Fatalf("run 2 epoch = %d, want warm start from 1", got)
	}
	if got := matchIDs(c); !equalInts(got, baseline) {
		t.Fatalf("run 2 answers %v != baseline %v", got, baseline)
	}
	if _, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.41, 0.41)}); err != nil {
		t.Fatal(err)
	}
	go c.Compact(ctx, "OLE") // hangs in the delayed fsync; killed below
	tmp := filepath.Join(snapDir, "OLE"+".snap.tmp")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(tmp); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("epoch-2 .tmp never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	proc.Process.Kill() // SIGKILL mid-compaction
	proc.Wait()
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("torn .tmp gone after kill: %v", err)
	}

	// Run 3: the torn epoch-2 write must be invisible — the daemon
	// resumes from the complete epoch-1 snapshot with its answers
	// intact, and the uncompacted run-2 insert is gone (volatile by
	// design). Ingest keeps working after recovery.
	addr, proc = startDaemon(t, bin, nil, args...)
	c = server.NewClient("http://" + addr)
	if got := epochOf(c); got != 1 {
		t.Fatalf("run 3 epoch = %d, want recovery at 1", got)
	}
	if got := matchIDs(c); !equalInts(got, baseline) {
		t.Fatalf("run 3 answers %v != baseline %v", got, baseline)
	}
	if strays, _ := filepath.Glob(filepath.Join(snapDir, "*.corrupt-*")); len(strays) != 0 {
		t.Fatalf("recovery quarantined something: %v", strays)
	}
	if _, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.42, 0.42)}); err != nil {
		t.Fatalf("ingest after crash recovery: %v", err)
	}
	if comp, err = c.Compact(ctx, "OLE"); err != nil || comp.Epoch != 2 {
		t.Fatalf("compact after recovery: epoch=%d err=%v", comp.Epoch, err)
	}
	proc.Process.Kill()
	proc.Wait()
}

// TestE2EIngestWALCrashDrill is the durability drill: with -wal, acked
// mutations must survive SIGKILL *without* a compaction (exactly the
// window the non-WAL daemon loses by design), a WAL append failure must
// surface as 503 — never a silent ack — and the torn record a failed
// append leaves behind must be truncated away on restart instead of
// resurrecting a mutation nobody was told succeeded.
func TestE2EIngestWALCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	snapDir := filepath.Join(dir, "snapshots")
	walDir := filepath.Join(dir, "wal")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	sp := datagen.Space()
	w := (sp.MaxX - sp.MinX) / 100
	rect := func(fx, fy float64) string {
		x := sp.MinX + fx*(sp.MaxX-sp.MinX)
		y := sp.MinY + fy*(sp.MaxY-sp.MinY)
		return fmt.Sprintf("POLYGON ((%g %g, %g %g, %g %g, %g %g))",
			x, y, x+w, y, x+w, y+w, x, y+w)
	}
	probe := server.RelateRequest{Dataset: "OLE", WKT: rect(0.4, 0.4), Limit: 100000}
	args := []string{"-addr", "127.0.0.1:0", "-gen", "OLE", "-scale", "0.02",
		"-seed", "7", "-snapshots", snapDir, "-wal", walDir, "-compact-threshold", "0"}
	matchIDs := func(c *server.Client) []int {
		t.Helper()
		resp, err := c.Relate(ctx, probe)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(resp.Matches))
		for i, m := range resp.Matches {
			ids[i] = m.ID
		}
		sort.Ints(ids)
		return ids
	}

	// Run 1: acked inserts and a delete, NO compaction, SIGKILL. The
	// snapshot epoch knows nothing of these; only the WAL does.
	addr, proc := startDaemon(t, bin, nil, args...)
	c := server.NewClient("http://" + addr)
	insA, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.401, 0.401)})
	if err != nil {
		t.Fatal(err)
	}
	insB, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.405, 0.405)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(ctx, "OLE", insA.ID); err != nil {
		t.Fatal(err)
	}
	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.WalPendingBytes <= 0 {
		t.Fatalf("healthz wal_pending_bytes = %d after acked mutations, want > 0", health.WalPendingBytes)
	}
	baseline := matchIDs(c)
	proc.Process.Kill()
	proc.Wait()

	// Run 2: every acked mutation is back via replay. Then a WAL append
	// failure (disk full mid-record, recovery truncate also failing)
	// must refuse the write with 503 — and the torn record is on disk
	// when SIGKILL lands.
	addr, proc = startDaemon(t, bin,
		[]string{"STJ_FAULTS=wal.append=enospc:16;wal.truncate=error"}, args...)
	c = server.NewClient("http://" + addr)
	if got := matchIDs(c); !equalInts(got, baseline) {
		t.Fatalf("run 2 lost acked mutations: %v != baseline %v", got, baseline)
	}
	_, err = c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.41, 0.41)})
	apiErr, ok := err.(*server.APIError)
	if !ok || apiErr.StatusCode != 503 {
		t.Fatalf("insert with failing WAL append: err = %v, want 503", err)
	}
	if apiErr.Reason != "wal_append_failed" {
		t.Fatalf("503 reason = %q, want wal_append_failed", apiErr.Reason)
	}
	if got := matchIDs(c); !equalInts(got, baseline) {
		t.Fatalf("non-durable insert visible in answers: %v != baseline %v", got, baseline)
	}
	proc.Process.Kill() // the torn append is still in the segment file
	proc.Wait()

	// Run 3: restart truncates the torn tail — the 503'd insert must
	// NOT come back — while the run-1 acked state is intact. New ids
	// continue above every logged id, and ingest + compaction work.
	addr, proc = startDaemon(t, bin, nil, args...)
	c = server.NewClient("http://" + addr)
	if got := matchIDs(c); !equalInts(got, baseline) {
		t.Fatalf("run 3 answers %v != baseline %v (torn tail resurrected or acked state lost)", got, baseline)
	}
	insC, err := c.Insert(ctx, "OLE", server.IngestRequest{WKT: rect(0.42, 0.42)})
	if err != nil {
		t.Fatalf("ingest after torn-tail recovery: %v", err)
	}
	if want := insB.ID + 1; insC.ID != want {
		t.Fatalf("post-recovery insert id = %d, want %d (ids must never be reused)", insC.ID, want)
	}
	health, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pendingBefore := health.WalPendingBytes
	if comp, err := c.Compact(ctx, "OLE"); err != nil || comp.Epoch != 1 {
		t.Fatalf("compact after recovery: epoch=%d err=%v", comp.Epoch, err)
	}
	// Compaction persisted the epoch, so the log was pruned: pending
	// bytes shrink, and the next restart replays nothing yet keeps the
	// answers.
	health, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.WalPendingBytes >= pendingBefore {
		t.Fatalf("wal_pending_bytes not pruned by compaction: %d -> %d",
			pendingBefore, health.WalPendingBytes)
	}
	afterCompact := matchIDs(c)
	proc.Process.Kill()
	proc.Wait()
	addr, proc = startDaemon(t, bin, nil, args...)
	c = server.NewClient("http://" + addr)
	if got := matchIDs(c); !equalInts(got, afterCompact) {
		t.Fatalf("run 4 answers %v != post-compaction %v", got, afterCompact)
	}
	proc.Process.Kill()
	proc.Wait()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
