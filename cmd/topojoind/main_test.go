package main

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/server"
)

func TestParseSpace(t *testing.T) {
	got, err := parseSpace("0, 0, 512, 256")
	if err != nil {
		t.Fatal(err)
	}
	want := geom.MBR{MinX: 0, MinY: 0, MaxX: 512, MaxY: 256}
	if got != want {
		t.Fatalf("parseSpace = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5", "a,b,c,d"} {
		if _, err := parseSpace(bad); err == nil {
			t.Errorf("parseSpace(%q) should fail", bad)
		}
	}
}

func TestBuildRegistry(t *testing.T) {
	reg, err := buildRegistry("", "OLE, OPE", 5, 0.03, datagen.DefaultOrder, "", "", nil, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("registry has %d datasets, want 2", reg.Len())
	}
	if _, err := buildRegistry("", "NOPE", 5, 0.03, datagen.DefaultOrder, "", "", nil, obs.NewRegistry()); err == nil {
		t.Error("unknown synthetic set should fail")
	}
	if _, err := buildRegistry("", "", 5, 0.03, datagen.DefaultOrder, "", "", nil, obs.NewRegistry()); err == nil {
		t.Error("no datasets should fail")
	}
	if _, err := buildRegistry("", "OLE", 5, 0.03, datagen.DefaultOrder, "bad", "", nil, obs.NewRegistry()); err == nil {
		t.Error("bad space spec should fail")
	}
}

func TestBuildRegistryFromDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "probe.wkt"),
		[]byte("POLYGON ((10 10, 20 10, 20 20, 10 20))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := buildRegistry(dir, "", 5, 0.03, datagen.DefaultOrder, "", "", nil, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("probe"); !ok {
		t.Fatal("wkt dataset not registered")
	}
}

// TestRunServesAndDrainsOnSIGTERM boots the daemon end to end: bind an
// ephemeral port, answer queries through the Go client, then deliver a
// real SIGTERM and require a clean drain.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "", "OLE,OPE", 5, 0.03, datagen.DefaultOrder, "",
			server.Config{}, 5*time.Second, "", ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	ctx := context.Background()
	c := server.NewClient("http://" + addr)
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Datasets != 2 {
		t.Fatalf("health = %+v, %v", h, err)
	}
	jr, err := c.Join(ctx, server.JoinRequest{Left: "OLE", Right: "OPE"})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Candidates == 0 || jr.Evaluated != jr.Candidates {
		t.Fatalf("join = %+v", jr)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	if _, err := c.Health(ctx); err == nil {
		t.Error("listener still answering after shutdown")
	}
}

func TestRunBadListenAddr(t *testing.T) {
	if err := run("256.0.0.1:bad", "", "OLE", 5, 0.03, datagen.DefaultOrder, "",
		server.Config{}, time.Second, "", nil); err == nil {
		t.Error("unusable listen address should fail")
	}
}

// TestBuildRegistrySnapshotWarmStart: with -snapshots, a second daemon
// start must load the persisted indexes instead of re-rasterizing.
func TestBuildRegistrySnapshotWarmStart(t *testing.T) {
	snapDir := t.TempDir()
	met1 := obs.NewRegistry()
	if _, err := buildRegistry("", "OLE", 5, 0.03, datagen.DefaultOrder, "", snapDir, nil, met1); err != nil {
		t.Fatal(err)
	}
	if got := met1.Counter("server_snapshot_writes_total").Value(); got != 1 {
		t.Fatalf("snapshot writes = %d, want 1", got)
	}
	if met1.Counter("server_preprocess_objects_total").Value() == 0 {
		t.Fatal("cold start must preprocess")
	}
	met2 := obs.NewRegistry()
	reg, err := buildRegistry("", "OLE", 5, 0.03, datagen.DefaultOrder, "", snapDir, nil, met2)
	if err != nil {
		t.Fatal(err)
	}
	if got := met2.Counter("server_preprocess_objects_total").Value(); got != 0 {
		t.Fatalf("warm start preprocessed %d objects, want 0", got)
	}
	if got := met2.Counter("server_snapshot_loads_total").Value(); got != 1 {
		t.Fatalf("snapshot loads = %d, want 1", got)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry has %d datasets", reg.Len())
	}
}
