// Command topojoind is the resident topology query service: it loads
// named datasets, builds their APRIL approximations and STR R-tree
// indexes once, and serves relate probes and dataset-pair joins over an
// HTTP JSON API with bounded concurrency, per-request deadlines and
// graceful drain. The batch CLIs rebuild everything per run; topojoind
// amortizes preprocessing across the life of the process.
//
//	topojoind -data data/                         # serve preprocessed datasets
//	topojoind -gen OLE,OPE -scale 0.2             # serve generated synthetic sets
//	topojoind -addr :9090 -max-inflight 32 -timeout 5s -grace 15s
//	topojoind -data data/ -snapshots /var/lib/topojoin  # warm restarts
//
// With -snapshots, preprocessed indexes are persisted as checksummed
// snapshots and restarts load them instead of re-rasterizing; a corrupt
// snapshot is quarantined and its dataset served in degraded mode
// (MBR + refine) while a background rebuild recovers it. -repro names a
// directory receiving WKT dumps of any geometry pair whose evaluation
// panicked. The STJ_FAULTS environment variable arms fault-injection
// points (testing only). With -wal, every accepted mutation is appended
// to a per-dataset write-ahead log and fsynced before the HTTP ack, so
// acked ingest survives a crash: restart replays the log over the last
// snapshot epoch. -wal-sync opens a group-commit window that amortizes
// the fsync across concurrent writers. -trace-sample and -trace-slow enable
// request-scoped span tracing (buffer served on /debug/traces);
// -slowlog names a directory receiving slow-query forensics (trace
// JSON + WKT dump of the slowest pair).
//
// Endpoints: /v1/healthz, /v1/datasets, /v1/relate, /v1/join, plus the
// observability surface (/metrics, /metrics.json, /debug/pprof/) on the
// same listener. SIGINT/SIGTERM starts a graceful drain: new requests
// get 503, in-flight requests finish (or are cancelled when -grace
// expires), then the process exits.
//
// With -shard-id and -keyrange the daemon serves as one shard of a
// partitioned fleet behind a topojoinrouter: it registers only the
// objects overlapping its Hilbert key range (boundary-straddling
// objects are replicated onto every overlapped shard) and answers only
// the candidate pairs it owns under the reference-point rule, so the
// router's merged answers match a single full server exactly. Snapshots
// go to a per-shard subdirectory: shards of one fleet can share a
// -snapshots root.
//
//	topojoind -gen OLE,OPE -shard-id 0 -keyrange 0:1365  # shard 0 of 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/datagen"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		data        = flag.String("data", "", "directory of datasets to serve (.stj, .wkt, .geojson)")
		gen         = flag.String("gen", "", "comma-separated synthetic suite sets to generate and serve (e.g. OLE,OPE)")
		seed        = flag.Int64("seed", 2026, "generator seed for -gen")
		scale       = flag.Float64("scale", 0.2, "cardinality multiplier for -gen")
		order       = flag.Uint("order", datagen.DefaultOrder, "global grid order (2^order cells per side)")
		space       = flag.String("space", "", "data space minX,minY,maxX,maxY (default: synthetic suite space)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 4×GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max queries waiting for a slot (0 = max-inflight)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "max time a query waits for a slot before 429")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", time.Minute, "ceiling on client-requested deadlines")
		grace       = flag.Duration("grace", 10*time.Second, "graceful shutdown drain period")
		workers     = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		snapshots   = flag.String("snapshots", "", "directory of durable index snapshots (warm restarts; empty disables)")
		repro       = flag.String("repro", "", "directory receiving WKT repro dumps of panicking pairs (empty disables)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests recording full span traces (0 disables, 1 traces all)")
		traceSlow   = flag.Duration("trace-slow", 0, "keep any request's trace at or above this duration, sampled or not (0 disables)")
		slowlog     = flag.String("slowlog", "", "directory receiving slow-query forensics: trace JSON + WKT pair dumps (needs -trace-slow)")
		compactThr  = flag.Int("compact-threshold", server.DefaultCompactThreshold, "pending mutations before a background compaction rolls a new index epoch (0 disables auto-compaction)")
		shardID     = flag.Int("shard-id", -1, "serve as shard N of a partitioned fleet (-1 = standalone; requires -keyrange)")
		keyrange    = flag.String("keyrange", "", "Hilbert key range lo:hi (half-open) this shard owns (from topojoinrouter -print-plan)")
		routeOrder  = flag.Uint("route-order", shard.DefaultRouteOrder, "Hilbert order of the fleet's routing grid (must match the router)")
		walFlag     = flag.String("wal", "", "directory of per-dataset write-ahead logs: mutations fsync before the ack and replay on restart (empty disables durability)")
		walSyncFlag = flag.Duration("wal-sync", 0, "group-commit window: how long a WAL commit leader waits for more writers before fsyncing the batch (0 = commit immediately)")
		walMaxSeg   = flag.Int64("wal-max-segment", 64<<20, "WAL segment rotation threshold in bytes")
	)
	flag.Parse()
	if *data == "" && *gen == "" {
		fmt.Fprintln(os.Stderr, "topojoind: one of -data or -gen is required")
		os.Exit(2)
	}
	if err := fault.ArmFromEnv(os.Getenv(fault.EnvVar)); err != nil {
		fmt.Fprintln(os.Stderr, "topojoind:", err)
		os.Exit(2)
	}
	asg, err := shardAssignment(*shardID, *keyrange, *routeOrder, *space)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topojoind:", err)
		os.Exit(2)
	}
	var tracer *trace.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = trace.New(trace.Config{Sample: *traceSample, SlowThreshold: *traceSlow})
	}
	compactThreshold = *compactThr
	walConf = server.WALOptions{Dir: *walFlag, SyncInterval: *walSyncFlag, MaxSegment: *walMaxSeg}
	if err := run(*addr, *data, *gen, *seed, *scale, *order, *space, server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		JoinWorkers:    *workers,
		ReproDir:       *repro,
		Tracer:         tracer,
		SlowDir:        *slowlog,
		Shard:          asg,
	}, *grace, *snapshots, nil); err != nil {
		fmt.Fprintln(os.Stderr, "topojoind:", err)
		os.Exit(1)
	}
}

// shardAssignment builds the fleet assignment from the shard flags
// (nil when -shard-id is -1). The data space must agree with the
// router's: the key range addresses cells of a grid over that space.
func shardAssignment(id int, keyrange string, routeOrder uint, spaceSpec string) (*shard.Assignment, error) {
	if id < 0 {
		if keyrange != "" {
			return nil, errors.New("-keyrange requires -shard-id")
		}
		return nil, nil
	}
	if keyrange == "" {
		return nil, errors.New("-shard-id requires -keyrange")
	}
	space := datagen.Space()
	if spaceSpec != "" {
		var err error
		if space, err = parseSpace(spaceSpec); err != nil {
			return nil, err
		}
	}
	rng, err := shard.ParseKeyRange(keyrange)
	if err != nil {
		return nil, err
	}
	return shard.NewAssignment(space, routeOrder, id, rng)
}

// buildRegistry assembles the dataset registry from -gen sets and/or a
// -data directory. With snapDir, registrations are snapshot-aware:
// valid snapshots warm-start, corrupt ones quarantine and serve
// degraded while a background rebuild recovers them.
func buildRegistry(data, gen string, seed int64, scale float64, order uint, spaceSpec, snapDir string, asg *shard.Assignment, met *obs.Registry) (*server.Registry, error) {
	space := datagen.Space()
	if spaceSpec != "" {
		var err error
		if space, err = parseSpace(spaceSpec); err != nil {
			return nil, err
		}
	}
	reg := server.NewRegistry(space, order)
	reg.SetCompactThreshold(compactThreshold)
	reg.Instrument(met)
	reg.SetLogf(logf)
	if asg != nil {
		reg.SetShard(asg)
	}
	if snapDir != "" {
		if err := reg.EnableSnapshots(snapDir); err != nil {
			return nil, err
		}
	}
	if walConf.Dir != "" {
		if err := reg.EnableWAL(walConf); err != nil {
			return nil, err
		}
	}
	if gen != "" {
		suite := datagen.NewSuite(seed, scale)
		for _, name := range strings.Split(gen, ",") {
			name = strings.TrimSpace(name)
			polys, ok := suite.Sets[name]
			if !ok {
				return nil, fmt.Errorf("unknown synthetic set %q (have %s)",
					name, strings.Join(datagen.DatasetNames, ","))
			}
			start := time.Now()
			if _, err := reg.Register(name, datagen.EntityTypes[name], polys); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "generated %s: %d objects, indexed in %v\n",
				name, len(polys), time.Since(start).Round(time.Millisecond))
		}
	}
	if data != "" {
		names, err := reg.LoadDir(data)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "loaded %d datasets from %s: %s\n",
			len(names), data, strings.Join(names, ", "))
	}
	if reg.Len() == 0 {
		return nil, errors.New("no datasets registered")
	}
	return reg, nil
}

func parseSpace(s string) (geom.MBR, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.MBR{}, fmt.Errorf("space: want minX,minY,maxX,maxY, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.MBR{}, fmt.Errorf("space: %w", err)
		}
		v[i] = f
	}
	return geom.MBR{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}

// compactThreshold is the -compact-threshold flag value; a package var
// (not a run parameter) so tests driving buildRegistry/run directly get
// the default without threading one more argument everywhere.
var compactThreshold = server.DefaultCompactThreshold

// walConf carries the -wal flags the same way (zero Dir = durability
// off). Like -snapshots, shards of one fleet may share a -wal root:
// run() appends the per-shard subdirectory.
var walConf server.WALOptions

// logf routes operational log lines (quarantines, rebuilds, recovered
// panics) to stderr.
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// run serves until SIGINT/SIGTERM, then drains within grace. ready, when
// non-nil, receives the bound address once the listener is up (tests).
func run(addr, data, gen string, seed int64, scale float64, order uint, spaceSpec string, cfg server.Config, grace time.Duration, snapDir string, ready chan<- string) error {
	cfg.Metrics = obs.NewRegistry()
	obs.RegisterRuntimeMetrics(cfg.Metrics)
	cfg.Logf = logf
	if cfg.Shard != nil && snapDir != "" {
		// Shards of one fleet can share a -snapshots root: each key
		// range holds a different object subset, so snapshots must not
		// collide across shards.
		snapDir = filepath.Join(snapDir, fmt.Sprintf("shard-%d", cfg.Shard.Index()))
	}
	if cfg.Shard != nil && walConf.Dir != "" {
		walConf.Dir = filepath.Join(walConf.Dir, fmt.Sprintf("shard-%d", cfg.Shard.Index()))
	}
	reg, err := buildRegistry(data, gen, seed, scale, order, spaceSpec, snapDir, cfg.Shard, cfg.Metrics)
	if err != nil {
		return err
	}
	svc := server.New(reg, cfg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	if a := cfg.Shard; a != nil {
		fmt.Fprintf(os.Stderr, "topojoind: shard %d owning keyrange %s (route order %d)\n",
			a.Index(), a.Range(), a.RouteOrder())
	}
	fmt.Fprintf(os.Stderr, "topojoind: serving %d datasets on http://%s (grace %v)\n",
		reg.Len(), ln.Addr(), grace)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	fmt.Fprintln(os.Stderr, "topojoind: draining...")

	gctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	drainErr := svc.Shutdown(gctx)
	if err := httpSrv.Shutdown(gctx); err != nil && drainErr == nil {
		drainErr = err
	}
	// The listener is down and requests have drained: let background
	// compactions finish (their snapshot writes move the WAL prune
	// watermark), then close the logs. Every acked mutation was fsynced
	// at commit time, so nothing here can lose data.
	reg.WaitCompactions()
	reg.CloseWAL()
	if drainErr != nil {
		return fmt.Errorf("shutdown: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "topojoind: drained cleanly")
	return nil
}
