// Command topojoin runs a spatial topology join between two preprocessed
// datasets (built with datagen or aprilbuild): it produces the pairs of
// objects whose MBRs intersect and evaluates either the find-relation
// problem (the most specific relation of each pair) or a relate_p
// predicate on each pair.
//
//	topojoin -left data/OLE.stj -right data/OPE.stj               # find relation
//	topojoin -left data/OLE.stj -right data/OPE.stj -pred inside  # relate_p
//	topojoin ... -method ST2 -v                                    # print pairs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/de9im"
	"repro/internal/join"
)

func main() {
	var (
		left   = flag.String("left", "", "left dataset file")
		right  = flag.String("right", "", "right dataset file")
		pred   = flag.String("pred", "", "relate predicate (equals|meets|inside|covered_by|contains|covers|intersects|disjoint); empty = find relation")
		method = flag.String("method", "P+C", "pipeline: ST2|OP2|APRIL|P+C")
		verb   = flag.Bool("v", false, "print every result pair")
	)
	flag.Parse()
	if *left == "" || *right == "" {
		fmt.Fprintln(os.Stderr, "topojoin: -left and -right are required")
		os.Exit(2)
	}
	if err := run(*left, *right, *pred, *method, *verb); err != nil {
		fmt.Fprintln(os.Stderr, "topojoin:", err)
		os.Exit(1)
	}
}

func parseMethod(s string) (core.Method, error) {
	for _, m := range core.Methods {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func parseRelation(s string) (de9im.Relation, error) {
	for r := de9im.Relation(0); int(r) < de9im.NumRelations; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown relation %q", s)
}

func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Read(f)
}

func run(leftPath, rightPath, predName, methodName string, verbose bool) error {
	m, err := parseMethod(methodName)
	if err != nil {
		return err
	}
	ld, err := loadDataset(leftPath)
	if err != nil {
		return err
	}
	rd, err := loadDataset(rightPath)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d objects, %s: %d objects\n", ld.Name, ld.Len(), rd.Name, rd.Len())

	idPairs := join.Pairs(ld.MBRs(), rd.MBRs())
	fmt.Printf("MBR join: %d candidate pairs\n", len(idPairs))

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if predName == "" {
		var hist [de9im.NumRelations]int
		refined := 0
		start := time.Now()
		for _, pr := range idPairs {
			r, s := ld.Objects[pr[0]], rd.Objects[pr[1]]
			res := core.FindRelation(m, r, s)
			hist[res.Relation]++
			if res.Refined {
				refined++
			}
			if verbose {
				fmt.Fprintf(out, "%d\t%d\t%v\n", r.ID, s.ID, res.Relation)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("method %v: %v (%.0f pairs/s), %d refined (%.1f%%)\n",
			m, elapsed, float64(len(idPairs))/elapsed.Seconds(),
			refined, 100*float64(refined)/float64(max(1, len(idPairs))))
		for r := de9im.Relation(0); int(r) < de9im.NumRelations; r++ {
			if hist[r] > 0 {
				fmt.Printf("  %-11v %d\n", r, hist[r])
			}
		}
		return nil
	}

	pred, err := parseRelation(predName)
	if err != nil {
		return err
	}
	holds, refined := 0, 0
	start := time.Now()
	for _, pr := range idPairs {
		r, s := ld.Objects[pr[0]], rd.Objects[pr[1]]
		res := core.RelatePred(m, r, s, pred)
		if res.Holds {
			holds++
			if verbose {
				fmt.Fprintf(out, "%d\t%d\n", r.ID, s.ID)
			}
		}
		if res.Refined {
			refined++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("relate_%v with %v: %d of %d pairs hold, %d refined, %v (%.0f pairs/s)\n",
		pred, m, holds, len(idPairs), refined, elapsed,
		float64(len(idPairs))/elapsed.Seconds())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
