// Command topojoin runs a spatial topology join between two preprocessed
// datasets (built with datagen or aprilbuild): it produces the pairs of
// objects whose MBRs intersect and evaluates either the find-relation
// problem (the most specific relation of each pair) or a relate_p
// predicate on each pair.
//
//	topojoin -left data/OLE.stj -right data/OPE.stj               # find relation
//	topojoin -left data/OLE.stj -right data/OPE.stj -pred inside  # relate_p
//	topojoin ... -method ST2 -v                                    # print pairs
//	topojoin ... -metrics                                          # dump telemetry on exit
//	topojoin ... -pprof localhost:6060                             # live pprof + /metrics
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/de9im"
	"repro/internal/join"
	"repro/internal/obs"
)

func main() {
	var (
		left    = flag.String("left", "", "left dataset file")
		right   = flag.String("right", "", "right dataset file")
		pred    = flag.String("pred", "", "relate predicate (equals|meets|inside|covered_by|contains|covers|intersects|disjoint); empty = find relation")
		method  = flag.String("method", "P+C", "pipeline: ST2|OP2|APRIL|P+C")
		verb    = flag.Bool("v", false, "print every result pair")
		metrics = flag.Bool("metrics", false, "instrument the run and dump a metrics snapshot on exit")
		pprof   = flag.String("pprof", "", "serve /metrics, expvar and net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *left == "" || *right == "" {
		fmt.Fprintln(os.Stderr, "topojoin: -left and -right are required")
		os.Exit(2)
	}
	opts := options{
		left:    *left,
		right:   *right,
		pred:    *pred,
		method:  *method,
		verbose: *verb,
	}
	if *metrics {
		opts.reg = obs.NewRegistry()
	}
	if *pprof != "" {
		reg := opts.reg
		if reg == nil {
			reg = obs.NewRegistry()
		}
		addr, stop, err := obs.ServeDebug(*pprof, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topojoin:", err)
			os.Exit(1)
		}
		defer stop(context.Background())
		opts.reg = reg
		fmt.Fprintf(os.Stderr, "serving metrics and pprof on http://%s/debug/pprof/\n", addr)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "topojoin:", err)
		os.Exit(1)
	}
}

// options configures one join run; reg non-nil enables instrumentation
// and a snapshot dump (tests pass their own registry to inspect it).
type options struct {
	left, right string
	pred        string
	method      string
	verbose     bool
	reg         *obs.Registry
	out         io.Writer // defaults to os.Stdout
}

func parseMethod(s string) (core.Method, error) {
	for _, m := range core.Methods {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func parseRelation(s string) (de9im.Relation, error) {
	for r := de9im.Relation(0); int(r) < de9im.NumRelations; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown relation %q", s)
}

func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Read(f)
}

func run(o options) error {
	if o.out == nil {
		o.out = os.Stdout
	}
	m, err := parseMethod(o.method)
	if err != nil {
		return err
	}
	ld, err := loadDataset(o.left)
	if err != nil {
		return err
	}
	rd, err := loadDataset(o.right)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "%s: %d objects, %s: %d objects\n", ld.Name, ld.Len(), rd.Name, rd.Len())

	var idPairs [][2]int32
	if o.reg != nil {
		var jst join.JoinStats
		idPairs, jst = join.PairsObserved(ld.MBRs(), rd.MBRs())
		jst.Publish(o.reg, "join")
	} else {
		idPairs = join.Pairs(ld.MBRs(), rd.MBRs())
	}
	fmt.Fprintf(o.out, "MBR join: %d candidate pairs\n", len(idPairs))

	out := bufio.NewWriter(o.out)
	defer out.Flush()

	if o.pred == "" {
		if err := runFind(o, m, ld, rd, idPairs, out); err != nil {
			return err
		}
	} else {
		if err := runPred(o, m, ld, rd, idPairs, out); err != nil {
			return err
		}
	}
	if o.reg != nil {
		obs.RegisterRuntimeMetrics(o.reg)
		out.Flush()
		fmt.Fprintln(o.out, "\n== metrics snapshot ==")
		return o.reg.Snapshot().WriteTable(o.out)
	}
	return nil
}

func runFind(o options, m core.Method, ld, rd *dataset.Dataset, idPairs [][2]int32, out *bufio.Writer) error {
	var sink core.PipelineSink // stays nil without -metrics: plain path
	var pm *core.PipelineMetrics
	if o.reg != nil {
		pm = core.NewPipelineMetrics(o.reg, "pipeline")
		sink = pm
	}
	var hist [de9im.NumRelations]int
	refined := 0
	start := time.Now()
	for _, pr := range idPairs {
		r, s := ld.Objects[pr[0]], rd.Objects[pr[1]]
		res := core.FindRelationObserved(m, r, s, sink)
		hist[res.Relation]++
		if res.Refined {
			refined++
		}
		if o.verbose {
			fmt.Fprintf(out, "%d\t%d\t%v\n", r.ID, s.ID, res.Relation)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "method %v: %v (%.0f pairs/s), %d refined (%.1f%%)\n",
		m, elapsed, float64(len(idPairs))/elapsed.Seconds(),
		refined, 100*float64(refined)/float64(max(1, len(idPairs))))
	for r := de9im.Relation(0); int(r) < de9im.NumRelations; r++ {
		if hist[r] > 0 {
			fmt.Fprintf(out, "  %-11v %d\n", r, hist[r])
		}
	}
	return nil
}

func runPred(o options, m core.Method, ld, rd *dataset.Dataset, idPairs [][2]int32, out *bufio.Writer) error {
	pred, err := parseRelation(o.pred)
	if err != nil {
		return err
	}
	var holdCtr, refineCtr *obs.Counter
	if o.reg != nil {
		holdCtr = o.reg.Counter(obs.Name("relate_holds_total", "pred", pred.String()))
		refineCtr = o.reg.Counter(obs.Name("relate_refined_total", "pred", pred.String()))
	}
	holds, refined := 0, 0
	start := time.Now()
	for _, pr := range idPairs {
		r, s := ld.Objects[pr[0]], rd.Objects[pr[1]]
		res := core.RelatePred(m, r, s, pred)
		if res.Holds {
			holds++
			if holdCtr != nil {
				holdCtr.Inc()
			}
			if o.verbose {
				fmt.Fprintf(out, "%d\t%d\n", r.ID, s.ID)
			}
		}
		if res.Refined {
			refined++
			if refineCtr != nil {
				refineCtr.Inc()
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "relate_%v with %v: %d of %d pairs hold, %d refined, %v (%.0f pairs/s)\n",
		pred, m, holds, len(idPairs), refined, elapsed,
		float64(len(idPairs))/elapsed.Seconds())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
