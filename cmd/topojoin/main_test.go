package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/april"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/join"
	"repro/internal/obs"
)

func writeDatasets(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	suite := datagen.NewSuite(5, 0.03)
	b := april.NewBuilder(suite.Space, datagen.DefaultOrder)
	paths := map[string]string{}
	for _, name := range []string{"OLE", "OPE"} {
		ds, err := dataset.Precompute(name, datagen.EntityTypes[name], suite.Sets[name], b)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name+".stj")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths[name] = p
	}
	return paths["OLE"], paths["OPE"]
}

func TestRunFindRelation(t *testing.T) {
	left, right := writeDatasets(t)
	for _, method := range []string{"ST2", "P+C"} {
		if err := run(options{left: left, right: right, method: method}); err != nil {
			t.Fatalf("method %s: %v", method, err)
		}
	}
}

func TestRunPredicate(t *testing.T) {
	left, right := writeDatasets(t)
	for _, pred := range []string{"inside", "meets", "disjoint"} {
		if err := run(options{left: left, right: right, pred: pred, method: "P+C"}); err != nil {
			t.Fatalf("pred %s: %v", pred, err)
		}
	}
}

// TestRunMetricsSnapshot covers the -metrics path end to end: the
// snapshot must contain per-stage verdict counters that sum exactly to
// the candidate-pair total, and the refined count must match
// MethodStats.Undetermined from a harness sweep of the identical
// workload — the two accountings are now one.
func TestRunMetricsSnapshot(t *testing.T) {
	left, right := writeDatasets(t)
	reg := obs.NewRegistry()
	var sb strings.Builder
	if err := run(options{left: left, right: right, method: "P+C", reg: reg, out: &sb}); err != nil {
		t.Fatal(err)
	}

	pairsTotal := reg.Counter("pipeline_pairs_total").Value()
	if pairsTotal <= 0 {
		t.Fatal("pipeline_pairs_total not populated")
	}
	var verdictSum int64
	for _, stage := range []string{"mbr", "if", "refine"} {
		verdictSum += reg.Counter(obs.Name("pipeline_verdict_total", "stage", stage)).Value()
	}
	if verdictSum != pairsTotal {
		t.Errorf("verdict counters sum to %d, want pair total %d", verdictSum, pairsTotal)
	}
	if got := reg.Counter("join_pairs_total").Value(); got != pairsTotal {
		t.Errorf("join produced %d pairs but pipeline saw %d", got, pairsTotal)
	}

	// Replay the identical workload through the harness: the registry's
	// refined count and MethodStats.Undetermined must agree exactly.
	ld, err := loadDataset(left)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := loadDataset(right)
	if err != nil {
		t.Fatal(err)
	}
	idPairs := join.Pairs(ld.MBRs(), rd.MBRs())
	hp := make([]harness.Pair, len(idPairs))
	for i, pr := range idPairs {
		hp[i] = harness.Pair{R: ld.Objects[pr[0]], S: rd.Objects[pr[1]]}
	}
	st := harness.RunFindRelation(core.PC, hp)
	if got := reg.Counter(obs.Name("pipeline_verdict_total", "stage", "refine")).Value(); got != int64(st.Undetermined) {
		t.Errorf("registry refined count %d != MethodStats.Undetermined %d", got, st.Undetermined)
	}

	out := sb.String()
	for _, want := range []string{"== metrics snapshot ==", "pipeline_pairs_total", "pipeline_verdict_total", "join_pairs_total", "go_goroutines"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot dump missing %q", want)
		}
	}
}

// TestRunPredicateMetrics: the relate_p path publishes hold/refine
// counters under the predicate label.
func TestRunPredicateMetrics(t *testing.T) {
	left, right := writeDatasets(t)
	reg := obs.NewRegistry()
	var sb strings.Builder
	if err := run(options{left: left, right: right, pred: "intersects", method: "P+C", reg: reg, out: &sb}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter(obs.Name("relate_holds_total", "pred", "intersects")).Value() <= 0 {
		t.Error("relate_holds_total not populated")
	}
	if reg.Counter("join_pairs_total").Value() <= 0 {
		t.Error("join counters not populated on the predicate path")
	}
}

func TestRunErrors(t *testing.T) {
	left, right := writeDatasets(t)
	if err := run(options{left: left, right: right, method: "NOPE"}); err == nil {
		t.Error("unknown method should fail")
	}
	if err := run(options{left: left, right: right, pred: "sideways", method: "P+C"}); err == nil {
		t.Error("unknown predicate should fail")
	}
	if err := run(options{left: "missing.stj", right: right, method: "P+C"}); err == nil {
		t.Error("missing left dataset should fail")
	}
	if err := run(options{left: left, right: "missing.stj", method: "P+C"}); err == nil {
		t.Error("missing right dataset should fail")
	}
}

func TestParsers(t *testing.T) {
	if _, err := parseMethod("APRIL"); err != nil {
		t.Error(err)
	}
	if _, err := parseMethod("april"); err == nil {
		t.Error("method names are case-sensitive")
	}
	if r, err := parseRelation("covered_by"); err != nil || r.String() != "covered_by" {
		t.Errorf("parseRelation: %v %v", r, err)
	}
	if _, err := parseRelation("nope"); err == nil {
		t.Error("unknown relation should fail")
	}
}
