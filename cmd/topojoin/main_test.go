package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/april"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func writeDatasets(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	suite := datagen.NewSuite(5, 0.03)
	b := april.NewBuilder(suite.Space, datagen.DefaultOrder)
	paths := map[string]string{}
	for _, name := range []string{"OLE", "OPE"} {
		ds, err := dataset.Precompute(name, datagen.EntityTypes[name], suite.Sets[name], b)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name+".stj")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths[name] = p
	}
	return paths["OLE"], paths["OPE"]
}

func TestRunFindRelation(t *testing.T) {
	left, right := writeDatasets(t)
	for _, method := range []string{"ST2", "P+C"} {
		if err := run(left, right, "", method, false); err != nil {
			t.Fatalf("method %s: %v", method, err)
		}
	}
}

func TestRunPredicate(t *testing.T) {
	left, right := writeDatasets(t)
	for _, pred := range []string{"inside", "meets", "disjoint"} {
		if err := run(left, right, pred, "P+C", false); err != nil {
			t.Fatalf("pred %s: %v", pred, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	left, right := writeDatasets(t)
	if err := run(left, right, "", "NOPE", false); err == nil {
		t.Error("unknown method should fail")
	}
	if err := run(left, right, "sideways", "P+C", false); err == nil {
		t.Error("unknown predicate should fail")
	}
	if err := run("missing.stj", right, "", "P+C", false); err == nil {
		t.Error("missing left dataset should fail")
	}
	if err := run(left, "missing.stj", "", "P+C", false); err == nil {
		t.Error("missing right dataset should fail")
	}
}

func TestParsers(t *testing.T) {
	if _, err := parseMethod("APRIL"); err != nil {
		t.Error(err)
	}
	if _, err := parseMethod("april"); err == nil {
		t.Error("method names are case-sensitive")
	}
	if r, err := parseRelation("covered_by"); err != nil || r.String() != "covered_by" {
		t.Errorf("parseRelation: %v %v", r, err)
	}
	if _, err := parseRelation("nope"); err == nil {
		t.Error("unknown relation should fail")
	}
}
