package main

import "testing"

// TestRunExperiments smoke-tests every experiment at a tiny scale; the
// shape assertions live in internal/harness, this guards the wiring.
func TestRunExperiments(t *testing.T) {
	for _, exp := range []string{
		"table2", "table3", "fig7a", "fig7b", "table4",
		"fig9", "table5", "access", "progressive",
	} {
		if err := run(exp, 3, 0.05, 11); err != nil {
			t.Fatalf("experiment %s: %v", exp, err)
		}
	}
}

func TestRunFig8(t *testing.T) {
	if err := run("fig8", 3, 0.05, 11); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblation(t *testing.T) {
	if err := run("ablation", 3, 0.05, 11); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("nonsense", 3, 0.05, 11); err == nil {
		t.Error("unknown experiment should fail")
	}
}
