package main

import (
	"testing"

	"repro/internal/obs"
)

// TestRunExperiments smoke-tests every experiment at a tiny scale; the
// shape assertions live in internal/harness, this guards the wiring.
func TestRunExperiments(t *testing.T) {
	for _, exp := range []string{
		"table2", "table3", "fig7a", "fig7b", "table4",
		"fig9", "table5", "access", "progressive",
	} {
		if err := run(exp, 3, 0.05, 11, nil); err != nil {
			t.Fatalf("experiment %s: %v", exp, err)
		}
	}
}

func TestRunFig8(t *testing.T) {
	if err := run("fig8", 3, 0.05, 11, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblation(t *testing.T) {
	if err := run("ablation", 3, 0.05, 11, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithMetrics: the fig7 sweep must publish per-method verdict
// telemetry that partitions the pair total, for every method.
func TestRunWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	if err := run("fig7a", 3, 0.05, 11, reg); err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"ST2", "OP2", "APRIL", "P+C"} {
		pairs := reg.Counter(obs.Name("fig7_pairs_total", "method", method)).Value()
		if pairs <= 0 {
			t.Fatalf("method %s: no pairs published", method)
		}
		var verdicts int64
		for _, stage := range []string{"mbr", "if", "refine"} {
			verdicts += reg.Counter(obs.Name("fig7_verdict_total", "method", method, "stage", stage)).Value()
		}
		if verdicts != pairs {
			t.Errorf("method %s: verdicts sum to %d, want %d", method, verdicts, pairs)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("nonsense", 3, 0.05, 11, nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}
