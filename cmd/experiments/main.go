// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic dataset suite:
//
//	experiments -exp table2   # dataset description (Table 2)
//	experiments -exp table3   # candidate pair counts (Table 3)
//	experiments -exp fig7a    # find-relation throughput per method
//	experiments -exp fig7b    # undetermined pairs per method
//	experiments -exp table4   # complexity-level grouping (Table 4)
//	experiments -exp fig8     # scalability: effectiveness + stage costs
//	experiments -exp fig9     # lake-in-park case study
//	experiments -exp table5   # find relation vs relate_p throughput
//	experiments -exp access   # unique-geometry access saving (Sec. 4.3)
//	experiments -exp ablation # grid-order and P-list ablations
//	experiments -exp progressive # progressive interlinking recall curve
//	experiments -exp all      # everything above
//
// -scale shrinks or grows the dataset cardinalities, -seed changes the
// generated world, -order the global grid granularity. -metrics dumps an
// aggregate telemetry snapshot of the method sweeps on exit; -pprof
// serves /metrics, expvar and net/http/pprof for profiling long runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/harness"
	"repro/internal/linkset"
	"repro/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table2|table3|fig7a|fig7b|table4|fig8|fig9|table5|access|progressive|ablation|all")
		seed    = flag.Int64("seed", 2026, "generator seed")
		scale   = flag.Float64("scale", 1.0, "dataset cardinality multiplier")
		order   = flag.Uint("order", datagen.DefaultOrder, "global grid order (2^order cells per side)")
		metrics = flag.Bool("metrics", false, "dump a telemetry snapshot of the sweeps on exit")
		pprof   = flag.String("pprof", "", "serve /metrics, expvar and net/http/pprof on this address")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	if *pprof != "" {
		if reg == nil {
			reg = obs.NewRegistry()
		}
		addr, stop, err := obs.ServeDebug(*pprof, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer stop(context.Background())
		fmt.Fprintf(os.Stderr, "serving metrics and pprof on http://%s/debug/pprof/\n", addr)
	}
	if err := run(*exp, *seed, *scale, *order, reg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *metrics {
		obs.RegisterRuntimeMetrics(reg)
		fmt.Println("\n== metrics snapshot ==")
		reg.Snapshot().WriteTable(os.Stdout)
	}
}

func run(exp string, seed int64, scale float64, order uint, reg *obs.Registry) error {
	fmt.Printf("generating suite (seed=%d scale=%.2f grid=2^%d)...\n", seed, scale, order)
	env, err := harness.NewEnv(seed, scale, order)
	if err != nil {
		return err
	}
	all := exp == "all"
	ran := false

	section := func(title string) {
		fmt.Printf("\n== %s ==\n", title)
		ran = true
	}

	if all || exp == "table2" {
		section("Table 2: datasets")
		harness.RenderTable2(os.Stdout, env.Table2())
	}
	if all || exp == "table3" {
		section("Table 3: candidate pairs per combination")
		rows, err := env.Table3()
		if err != nil {
			return err
		}
		harness.RenderTable3(os.Stdout, rows)
	}
	if all || exp == "fig7a" || exp == "fig7b" {
		rows, err := env.Fig7()
		if err != nil {
			return err
		}
		if reg != nil {
			// Aggregate sweep telemetry across combos, per method: the
			// regression baseline every perf PR diffs against.
			for _, row := range rows {
				for _, st := range row.Stats {
					st.Publish(reg, "fig7")
				}
			}
		}
		if all || exp == "fig7a" {
			section("Fig. 7(a): find-relation throughput")
			harness.RenderFig7a(os.Stdout, rows)
		}
		if all || exp == "fig7b" {
			section("Fig. 7(b): undetermined pairs")
			harness.RenderFig7b(os.Stdout, rows)
		}
	}
	if all || exp == "table4" {
		section("Table 4: OLE-OPE pairs by complexity level")
		levels, err := env.Table4(10)
		if err != nil {
			return err
		}
		harness.RenderTable4(os.Stdout, levels)
	}
	if all || exp == "fig8" {
		section("Fig. 8: scalability with pair complexity (OLE-OPE)")
		rows, err := env.Fig8(10)
		if err != nil {
			return err
		}
		harness.RenderFig8(os.Stdout, rows)
	}
	if all || exp == "fig9" {
		section("Fig. 9: high-complexity lake-inside-park case study")
		cs, err := env.Fig9()
		if err != nil {
			return err
		}
		harness.RenderFig9(os.Stdout, cs)
	}
	if all || exp == "table5" {
		section("Table 5: find relation vs relate_p throughput (OLE-OPE)")
		rows, err := env.Table5()
		if err != nil {
			return err
		}
		harness.RenderTable5(os.Stdout, rows)
	}
	if all || exp == "access" {
		section("Data access saving (Sec. 4.3, OLE-OPE)")
		pairs, err := env.CandidatePairs(harness.ComplexityCombo)
		if err != nil {
			return err
		}
		oL, oR := harness.UniqueObjectsRefined(core.OP2, pairs)
		pL, pR := harness.UniqueObjectsRefined(core.PC, pairs)
		fmt.Printf("OP2 accesses %d unique geometries, P+C %d (%.1f%%)\n\n",
			oL+oR, pL+pR, 100*float64(pL+pR)/float64(oL+oR))
		darows, err := env.DataAccess(256)
		if err != nil {
			return err
		}
		harness.RenderDataAccess(os.Stdout, darows)
	}
	if all || exp == "progressive" {
		section("Progressive interlinking (ref. [25]; OLE-OPE)")
		left := env.Datasets["OLE"].Objects
		right := env.Datasets["OPE"].Objects
		_, curve := linkset.DiscoverProgressive(left, right, core.PC, 10)
		fmt.Println("links found after fraction of pair verifications:")
		for _, pt := range curve {
			fmt.Printf("  %6d pairs -> %5d links\n", pt.Processed, pt.Links)
		}
		for _, budget := range []float64{0.1, 0.25, 0.5} {
			fmt.Printf("early recall at %3.0f%% budget: %.1f%%\n",
				100*budget, 100*linkset.EarlyRecall(curve, budget))
		}
	}
	if all || exp == "ablation" {
		section("Ablation: P-list contribution and narrowing-only (OLE-OPE)")
		rows, err := env.PListAblation()
		if err != nil {
			return err
		}
		harness.RenderPListAblation(os.Stdout, rows)

		section("Related work: intersection-filter comparison (OLE-OPE)")
		rwRows, err := env.RelatedWorkComparison()
		if err != nil {
			return err
		}
		harness.RenderRelatedWork(os.Stdout, rwRows)

		section("Ablation: grid order (OLE-OPE)")
		orders := []uint{9, 10, 11, 12, 13}
		grows, err := harness.GridOrderAblation(seed, scale, orders)
		if err != nil {
			return err
		}
		harness.RenderGridAblation(os.Stdout, grows)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
