// Command datagen generates the synthetic dataset suite and writes each
// dataset to a file: the library's binary format (polygons + precomputed
// APRIL approximations) by default, or WKT with -wkt.
//
//	datagen -out data/ -scale 1.0 -seed 2026
//	datagen -out data/ -wkt -sets OLE,OPE
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/april"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/wkt"
)

func main() {
	var (
		out   = flag.String("out", "data", "output directory")
		seed  = flag.Int64("seed", 2026, "generator seed")
		scale = flag.Float64("scale", 1.0, "dataset cardinality multiplier")
		order = flag.Uint("order", datagen.DefaultOrder, "global grid order")
		asWKT = flag.Bool("wkt", false, "write WKT instead of the binary format")
		sets  = flag.String("sets", "", "comma-separated dataset names (default: all)")
	)
	flag.Parse()

	if err := run(*out, *seed, *scale, *order, *asWKT, *sets); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, scale float64, order uint, asWKT bool, sets string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	suite := datagen.NewSuite(seed, scale)
	builder := april.NewBuilder(suite.Space, order)

	want := map[string]bool{}
	if sets != "" {
		for _, s := range strings.Split(sets, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	for _, name := range suite.SortedNames() {
		if len(want) > 0 && !want[name] {
			continue
		}
		polys := suite.Sets[name]
		if asWKT {
			path := filepath.Join(out, name+".wkt")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			for _, p := range polys {
				fmt.Fprintln(w, wkt.MarshalPolygon(p))
			}
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("%s: %d polygons -> %s\n", name, len(polys), path)
			continue
		}
		ds, err := dataset.Precompute(name, datagen.EntityTypes[name], polys, builder)
		if err != nil {
			return err
		}
		path := filepath.Join(out, name+".stj")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := ds.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		s := ds.Sizes()
		fmt.Printf("%s: %d polygons (%d vertices, approx %.1f KB) -> %s\n",
			name, ds.Len(), s.Vertices, float64(s.Approx)/1024, path)
	}
	return nil
}
