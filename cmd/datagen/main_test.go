package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func TestRunBinary(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 0.02, datagen.DefaultOrder, false, "OLE,OPE"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"OLE", "OPE"} {
		f, err := os.Open(filepath.Join(dir, name+".stj"))
		if err != nil {
			t.Fatal(err)
		}
		ds, err := dataset.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name || ds.Len() == 0 {
			t.Fatalf("%s: bad dataset %q with %d objects", name, ds.Name, ds.Len())
		}
	}
	// Unselected datasets are not written.
	if _, err := os.Stat(filepath.Join(dir, "TL.stj")); !os.IsNotExist(err) {
		t.Error("unselected dataset written")
	}
}

func TestRunWKT(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 0.02, datagen.DefaultOrder, true, "TL"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "TL.wkt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "POLYGON") {
		t.Fatalf("unexpected WKT output: %q", lines[0])
	}
}

func TestRunBadDir(t *testing.T) {
	if err := run(string([]byte{0}), 1, 0.01, 10, false, ""); err == nil {
		t.Error("invalid directory should fail")
	}
}
