package spatialtopo

import (
	"context"
	"testing"
)

func space() MBR { return MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100} }

func sqPoly(x0, y0, x1, y1 float64) *Polygon {
	return NewPolygon(Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}})
}

func TestQuickstartFlow(t *testing.T) {
	b := NewBuilder(space(), 10)
	lake, err := NewObject(0, sqPoly(30, 30, 50, 50), b)
	if err != nil {
		t.Fatal(err)
	}
	park, err := NewObject(1, sqPoly(10, 10, 90, 90), b)
	if err != nil {
		t.Fatal(err)
	}
	res := FindRelation(PC, lake, park)
	if res.Relation != Inside {
		t.Fatalf("relation = %v, want inside", res.Relation)
	}
	if res.Refined {
		t.Error("nested pair should be settled by the intermediate filter")
	}
	rr := RelatePred(PC, lake, park, CoveredBy)
	if !rr.Holds {
		t.Error("inside implies covered_by")
	}
	if !Implies(Inside, Intersects) || Implies(Disjoint, Intersects) {
		t.Error("Implies wrong")
	}
}

func TestWKTFacade(t *testing.T) {
	p, err := ParsePolygon("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePolygon(p); err != nil {
		t.Fatal(err)
	}
	round, err := ParsePolygon(MarshalPolygon(p))
	if err != nil {
		t.Fatal(err)
	}
	if round.NumVertices() != 4 {
		t.Error("WKT round trip lost vertices")
	}
}

func TestDE9IMFacade(t *testing.T) {
	got := DE9IM(sqPoly(0, 0, 2, 2), sqPoly(5, 5, 7, 7))
	if got != "FF2FF1212" {
		t.Errorf("DE9IM = %q", got)
	}
}

func TestCandidatePairsFacade(t *testing.T) {
	b := NewBuilder(space(), 10)
	mk := func(id int, x0, y0, x1, y1 float64) *Object {
		o, err := NewObject(id, sqPoly(x0, y0, x1, y1), b)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	left := []*Object{mk(0, 0, 0, 10, 10), mk(1, 50, 50, 60, 60)}
	right := []*Object{mk(0, 5, 5, 15, 15), mk(1, 90, 90, 99, 99)}
	pairs := CandidatePairs(left, right)
	if len(pairs) != 1 || pairs[0] != [2]int32{0, 0} {
		t.Fatalf("pairs = %v", pairs)
	}
	// All methods agree on each candidate pair.
	for _, pr := range pairs {
		want := FindRelation(ST2, left[pr[0]], right[pr[1]]).Relation
		for _, m := range []Method{OP2, APRIL, PC} {
			if got := FindRelation(m, left[pr[0]], right[pr[1]]).Relation; got != want {
				t.Errorf("method %v: %v, want %v", m, got, want)
			}
		}
	}
}

func TestCandidatePairsContextFacade(t *testing.T) {
	b := NewBuilder(space(), 10)
	mk := func(id int, x0, y0, x1, y1 float64) *Object {
		o, err := NewObject(id, sqPoly(x0, y0, x1, y1), b)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	left := []*Object{mk(0, 0, 0, 10, 10), mk(1, 50, 50, 60, 60)}
	right := []*Object{mk(0, 5, 5, 15, 15), mk(1, 90, 90, 99, 99)}

	pairs, err := CandidatePairsContext(context.Background(), left, right)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != [2]int32{0, 0} {
		t.Fatalf("pairs = %v", pairs)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CandidatePairsContext(ctx, left, right); err == nil {
		t.Fatal("cancelled context must surface an error")
	}
}

func TestOverlayFacade(t *testing.T) {
	a := NewMultiPolygon(sqPoly(0, 0, 2, 2))
	b := NewMultiPolygon(sqPoly(1, 0, 3, 2))
	r := Overlay(a, b)
	if r.Intersection != 2 || r.Union != 6 {
		t.Errorf("overlay: %+v", r)
	}
	if j := JaccardSimilarity(a, b); j < 0.33 || j > 0.34 {
		t.Errorf("jaccard = %v", j)
	}
	if v := IntersectionArea(sqPoly(0, 0, 2, 2), sqPoly(1, 0, 3, 2)); v != 2 {
		t.Errorf("intersection area = %v", v)
	}
}

func TestDistanceFacade(t *testing.T) {
	if d := PolygonDistance(sqPoly(0, 0, 2, 2), sqPoly(5, 0, 7, 2)); d != 3 {
		t.Errorf("distance = %v", d)
	}
}

func TestGeoJSONFacade(t *testing.T) {
	ms, err := ParseGeoJSON([]byte(`{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]}`))
	if err != nil || len(ms) != 1 {
		t.Fatalf("parse: %v", err)
	}
	if ms[0].Area() != 16 {
		t.Errorf("area = %v", ms[0].Area())
	}
	data, err := MarshalGeoJSON(ms[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseGeoJSON(data)
	if err != nil || len(back) != 1 || back[0].Area() != 16 {
		t.Fatalf("round trip: %v", err)
	}
}

func TestLinkFacade(t *testing.T) {
	b := NewBuilder(space(), 10)
	mk := func(id int, x0, y0, x1, y1 float64) *Object {
		o, err := NewObject(id, sqPoly(x0, y0, x1, y1), b)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	left := []*Object{mk(0, 10, 10, 20, 20)}
	right := []*Object{mk(0, 5, 5, 40, 40)}
	set := DiscoverLinks(left, right, PC)
	if len(set.Links) != 1 || set.Links[0].Relation != Inside {
		t.Fatalf("links: %+v", set.Links)
	}
}

func TestNewObjectAdaptiveFacade(t *testing.T) {
	unit := MBR{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	b := NewBuilder(unit, 16)
	huge := sqPoly(0.01, 0.01, 0.99, 0.99)
	if _, err := NewObject(0, huge, b); err == nil {
		t.Fatal("exact build should overflow")
	}
	o, err := NewObjectAdaptive(0, huge, b)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewObjectAdaptive(1, sqPoly(0.4, 0.4, 0.42, 0.42), b)
	if err != nil {
		t.Fatal(err)
	}
	res := FindRelation(PC, small, o)
	if res.Relation != Inside {
		t.Errorf("relation = %v, want inside", res.Relation)
	}
}
